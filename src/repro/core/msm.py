"""The Multi-Step Mechanism (MSM) — Algorithm 1 of the paper.

MSM sanitises a location by walking a hierarchical spatial index from
the root: at every level it solves (or fetches from cache) the *optimal
mechanism* over the current node's children, snaps the true location to
the child containing it (or a uniformly random child when the walk has
already drifted away — Algorithm 1, lines 9-10), samples a reported
child from the mechanism row, and descends into it.  The final level's
sampled centre is the reported location.

Each level consumes a slice of the privacy budget; by sequential
composition the full walk satisfies GeoInd at the budget sum.  Utility
is protected by the budget-allocation model of
:mod:`repro.core.budget`, which keeps the probability of "staying on
track" at least ``rho`` per level for as long as the budget lasts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import BudgetError, MechanismError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.index import IndexNode, SpatialIndex
from repro.mechanisms.base import Mechanism
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.optimal import optimal_mechanism_from_locations
from repro.priors.base import GridPrior
from repro.core.budget.allocation import BudgetPlan, allocate_budget
from repro.core.cache import NodeMechanismCache


@dataclass(frozen=True)
class StepTrace:
    """One level of an MSM walk, for inspection and tests."""

    level: int
    node_path: tuple[int, ...]
    x_hat_index: int
    x_hat_random: bool
    reported_index: int


class MultiStepMechanism(Mechanism):
    """MSM over any :class:`~repro.grid.index.SpatialIndex`.

    Parameters
    ----------
    index:
        The hierarchical partition to walk (a
        :class:`~repro.grid.hierarchy.HierarchicalGrid` for the paper's
        GIHI; quadtree/k-d variants for the future-work ablations).
    budgets:
        Per-level privacy budgets, top level first.  The walk stops at
        ``len(budgets)`` levels or at a leaf, whichever comes first.
    prior:
        Global prior on a fine regular grid over the same domain; each
        step restricts and renormalises it to the node's children.
    dq:
        Utility-loss metric optimised by each per-step OPT.
    dx:
        Distinguishability metric of the GeoInd constraints.
    backend:
        LP backend name (see :mod:`repro.lp`).
    spanner_dilation:
        Optional constraint-reduction dilation forwarded to each OPT.

    Use :meth:`build` for the end-to-end constructor that also runs the
    budget allocator.
    """

    def __init__(
        self,
        index: SpatialIndex,
        budgets: Sequence[float],
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
    ):
        budgets = tuple(float(b) for b in budgets)
        if not budgets:
            raise BudgetError("MSM needs at least one level budget")
        if any(b <= 0 for b in budgets):
            raise BudgetError(f"all level budgets must be positive: {budgets}")
        self._index = index
        self._budgets = budgets
        self._prior = prior
        self._dq = dq
        self._dx = dx
        self._backend = backend
        self._spanner_dilation = spanner_dilation
        self._cache = NodeMechanismCache()
        self._lp_seconds = 0.0
        self.epsilon = sum(budgets)
        self.name = "MSM"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        epsilon: float,
        granularity: int,
        prior: GridPrior,
        rho: float = 0.8,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        max_height: int = 16,
        spanner_dilation: float | None = None,
    ) -> "MultiStepMechanism":
        """Allocate the budget (Algorithm 2) and build MSM over a GIHI.

        The index height is whatever the allocator decides; the prior's
        grid provides the domain bounds.
        """
        plan = allocate_budget(
            epsilon,
            granularity,
            prior.grid.bounds.side,
            rho=rho,
            max_height=max_height,
        )
        return cls.from_plan(
            plan,
            prior,
            dq=dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
        )

    @classmethod
    def from_plan(
        cls,
        plan: BudgetPlan,
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
    ) -> "MultiStepMechanism":
        """Build MSM over a GIHI shaped by an existing budget plan."""
        index = HierarchicalGrid(
            prior.grid.bounds, plan.granularity, plan.height
        )
        msm = cls(
            index,
            plan.budgets,
            prior,
            dq=dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
        )
        msm._plan = plan
        return msm

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    _plan: BudgetPlan | None = None

    @property
    def index(self) -> SpatialIndex:
        """The hierarchical index MSM walks."""
        return self._index

    @property
    def budgets(self) -> tuple[float, ...]:
        """Per-level budgets, top first."""
        return self._budgets

    @property
    def plan(self) -> BudgetPlan | None:
        """The budget plan, when MSM was built through the allocator."""
        return self._plan

    @property
    def prior(self) -> GridPrior:
        """The global fine-grained prior."""
        return self._prior

    @property
    def cache(self) -> NodeMechanismCache:
        """The per-node mechanism cache."""
        return self._cache

    @property
    def lp_seconds(self) -> float:
        """Cumulative wall-clock spent solving per-node LPs."""
        return self._lp_seconds

    @property
    def height(self) -> int:
        """Number of levels the walk descends."""
        return len(self._budgets)

    # ------------------------------------------------------------------
    # the walk
    # ------------------------------------------------------------------
    def sample(self, x: Point, rng: np.random.Generator) -> Point:
        point, _ = self.sample_with_trace(x, rng)
        return point

    def sample_with_trace(
        self, x: Point, rng: np.random.Generator
    ) -> tuple[Point, list[StepTrace]]:
        """Sanitise ``x`` and return the per-level walk trace."""
        node = self._index.root
        trace: list[StepTrace] = []
        for level, _eps in enumerate(self._budgets, start=1):
            children = self._index.children(node)
            if not children:
                break
            matrix = self._step_mechanism(node, level, children)
            x_hat, was_random = self._x_hat_index(node, x, len(children), rng)
            reported = matrix.sample(x_hat, rng)
            trace.append(
                StepTrace(
                    level=level,
                    node_path=node.path,
                    x_hat_index=x_hat,
                    x_hat_random=was_random,
                    reported_index=reported,
                )
            )
            node = children[reported]
        if not trace:
            raise MechanismError("index root has no children; nothing to report")
        return (node.bounds.center, trace)

    def reported_distribution(self, x: Point) -> tuple[list[Point], np.ndarray]:
        """Exact output distribution of the walk for actual location ``x``.

        Expands the full walk tree (``fanout^height`` leaves), folding
        the lines-9-10 random fallback in closed form: when the current
        node does not contain ``x``, the effective mechanism row is the
        uniform mixture of all rows.  Used for exact expected-loss
        computation and for the privacy product-matrix tests.
        """
        points: list[Point] = []
        probs: list[float] = []

        def walk(node: IndexNode, level: int, mass: float) -> None:
            children = self._index.children(node)
            if level > len(self._budgets) or not children:
                points.append(node.bounds.center)
                probs.append(mass)
                return
            matrix = self._step_mechanism(node, level, children)
            child_of_x = self._index.locate_child(node, x)
            if child_of_x is not None:
                row = matrix.row(child_of_x.path[-1])
            else:
                row = matrix.k.mean(axis=0)
            for j, child in enumerate(children):
                p = float(row[j])
                if p > 0:
                    walk(child, level + 1, mass * p)

        walk(self._index.root, 1, 1.0)
        return (points, np.asarray(probs))

    def expected_loss(self, x: Point, dq: Metric | None = None) -> float:
        """Exact expected utility loss for actual location ``x``."""
        metric = dq if dq is not None else self._dq
        points, probs = self.reported_distribution(x)
        losses = np.asarray([metric(x, z) for z in points])
        return float(probs @ losses)

    def to_matrix(self) -> MechanismMatrix:
        """The exact end-to-end mechanism over leaf-cell centres.

        Requires MSM over a :class:`~repro.grid.hierarchy.HierarchicalGrid`
        (leaf cells then form a regular grid whose centres serve as both
        X and Z).  The result is the dense product of the whole walk —
        it makes MSM a first-class citizen of everything that consumes
        matrices: GeoInd verification, Bayesian remapping, inference
        attacks and exact expected-loss computation.  Cost is
        O(leaves * fanout^height); meant for analysis-scale instances,
        not the online path.
        """
        from repro.grid.hierarchy import HierarchicalGrid

        index = self._index
        if not isinstance(index, HierarchicalGrid):
            raise MechanismError(
                "to_matrix requires MSM over a HierarchicalGrid"
            )
        depth = min(self.height, index.height)
        leaf_grid = index.level_grid(depth)
        centers = leaf_grid.centers()
        k = np.zeros((len(centers), len(centers)))
        for i, x in enumerate(centers):
            points, probs = self.reported_distribution(x)
            for p, mass in zip(points, probs):
                k[i, leaf_grid.locate(p).index] += mass
        return MechanismMatrix(centers, centers, k)

    # ------------------------------------------------------------------
    # offline precomputation
    # ------------------------------------------------------------------
    def precompute(self, max_nodes: int | None = None) -> int:
        """Solve and cache every node mechanism reachable by a walk.

        Returns the number of newly solved nodes.  ``max_nodes`` caps
        the work (useful for very deep adaptive indexes); uncapped, the
        cache holds one matrix per internal node above the walk depth —
        the paper's "tens of megabytes" offline bundle.
        """
        solved = 0
        queue: list[tuple[IndexNode, int]] = [(self._index.root, 1)]
        while queue:
            node, level = queue.pop()
            if level > len(self._budgets):
                continue
            children = self._index.children(node)
            if not children:
                continue
            if node.path not in self._cache:
                self._step_mechanism(node, level, children)
                solved += 1
                if max_nodes is not None and solved >= max_nodes:
                    return solved
            queue.extend((child, level + 1) for child in children)
        return solved

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _x_hat_index(
        self,
        node: IndexNode,
        x: Point,
        n_children: int,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """Algorithm 1 lines 8-10: snap ``x`` or pick a random child."""
        child = self._index.locate_child(node, x)
        if child is not None:
            return (child.path[-1], False)
        return (int(rng.integers(n_children)), True)

    def _child_prior(self, children: Sequence[IndexNode]) -> np.ndarray:
        """Global prior mass restricted to ``children`` and renormalised."""
        centers = self._prior.grid.centers_array()
        probs = self._prior.probabilities
        masses = np.zeros(len(children))
        for j, child in enumerate(children):
            b = child.bounds
            inside = (
                (centers[:, 0] >= b.min_x)
                & (centers[:, 0] < b.max_x)
                & (centers[:, 1] >= b.min_y)
                & (centers[:, 1] < b.max_y)
            )
            masses[j] = probs[inside].sum()
        total = masses.sum()
        if total <= 0:
            return np.full(len(children), 1.0 / len(children))
        return masses / total

    def _step_mechanism(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> MechanismMatrix:
        """The OPT matrix for one node, cached by node path."""
        cached = self._cache.get(node.path)
        if cached is not None:
            return cached
        locations = [child.bounds.center for child in children]
        sub_prior = self._child_prior(children)
        start = time.perf_counter()
        result = optimal_mechanism_from_locations(
            self._budgets[level - 1],
            locations,
            sub_prior,
            self._dq,
            dx=self._dx,
            backend=self._backend,
            spanner_dilation=self._spanner_dilation,
        )
        self._lp_seconds += time.perf_counter() - start
        self._cache.put(node.path, result.matrix)
        return result.matrix
