"""The Multi-Step Mechanism (MSM) — Algorithm 1 of the paper.

MSM sanitises a location by walking a hierarchical spatial index from
the root: at every level it solves (or fetches from cache) the *optimal
mechanism* over the current node's children, snaps the true location to
the child containing it (or a uniformly random child when the walk has
already drifted away — Algorithm 1, lines 9-10), samples a reported
child from the mechanism row, and descends into it.  The final level's
sampled centre is the reported location.

Each level consumes a slice of the privacy budget; by sequential
composition the full walk satisfies GeoInd at the budget sum.  Utility
is protected by the budget-allocation model of
:mod:`repro.core.budget`, which keeps the probability of "staying on
track" at least ``rho`` per level for as long as the budget lasts.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import (
    BudgetError,
    DegradedModeWarning,
    MechanismError,
    SolverError,
)
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.index import IndexNode, SpatialIndex
from repro.mechanisms.base import Mechanism
from repro.mechanisms.exponential import exponential_matrix_from_locations
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.optimal import optimal_mechanism_from_locations
from repro.priors.base import GridPrior
from repro.privacy.guard import guard_mechanism, guarded_matrix
from repro.core.budget.allocation import BudgetPlan, allocate_budget
from repro.core.cache import CacheEntry, NodeMechanismCache
from repro.core.resilience import (
    DegradationReport,
    DegradedNode,
    ResilienceConfig,
    ResilientSolver,
)


@dataclass(frozen=True)
class StepTrace:
    """One level of an MSM walk, for inspection and tests."""

    level: int
    node_path: tuple[int, ...]
    x_hat_index: int
    x_hat_random: bool
    reported_index: int
    degraded: bool = False
    mechanism: str = "opt"


@dataclass(frozen=True)
class WalkResult:
    """A sanitised point plus the full account of how it was produced."""

    point: Point
    trace: tuple[StepTrace, ...]
    degradation: DegradationReport


class MultiStepMechanism(Mechanism):
    """MSM over any :class:`~repro.grid.index.SpatialIndex`.

    Parameters
    ----------
    index:
        The hierarchical partition to walk (a
        :class:`~repro.grid.hierarchy.HierarchicalGrid` for the paper's
        GIHI; quadtree/k-d variants for the future-work ablations).
    budgets:
        Per-level privacy budgets, top level first.  The walk stops at
        ``len(budgets)`` levels or at a leaf, whichever comes first.
    prior:
        Global prior on a fine regular grid over the same domain; each
        step restricts and renormalises it to the node's children.
    dq:
        Utility-loss metric optimised by each per-step OPT.
    dx:
        Distinguishability metric of the GeoInd constraints.
    backend:
        LP backend name (see :mod:`repro.lp`); becomes the *first* entry
        of the resilient solver's fallback chain.
    spanner_dilation:
        Optional constraint-reduction dilation forwarded to each OPT.
    resilience:
        Fallback-chain policy; defaults to the standard chain starting
        at ``backend``.  Ignored when an explicit ``solver`` is given.
    solver:
        A pre-built :class:`~repro.core.resilience.ResilientSolver`
        (the fault-injection harness passes one wrapping a scripted
        solve function).
    degrade:
        When True (default), a level whose OPT solve is unrecoverable
        is served by the closed-form exponential mechanism at that
        level's epsilon — same privacy, same budget spend, lower
        utility — and the substitution is recorded.  When False the
        walk raises instead (strict fail-stop).
    guard:
        When True (default), every step matrix is validated by the
        privacy guard before it may be sampled from; violations raise
        :class:`~repro.exceptions.PrivacyViolationError`.
    cache:
        An externally-owned :class:`NodeMechanismCache` (the fault
        harness uses this to inject cache faults); a fresh one by
        default.

    Use :meth:`build` for the end-to-end constructor that also runs the
    budget allocator.
    """

    def __init__(
        self,
        index: SpatialIndex,
        budgets: Sequence[float],
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
        resilience: ResilienceConfig | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
        cache: NodeMechanismCache | None = None,
    ):
        budgets = tuple(float(b) for b in budgets)
        if not budgets:
            raise BudgetError("MSM needs at least one level budget")
        if any(b <= 0 for b in budgets):
            raise BudgetError(f"all level budgets must be positive: {budgets}")
        self._index = index
        self._budgets = budgets
        self._prior = prior
        self._dq = dq
        self._dx = dx
        self._backend = backend
        self._spanner_dilation = spanner_dilation
        if solver is None:
            config = (
                resilience
                if resilience is not None
                else ResilienceConfig.starting_with(backend)
            )
            solver = ResilientSolver(config)
        self._solver = solver
        self._degrade = degrade
        self._guard = guard
        self._cache = cache if cache is not None else NodeMechanismCache()
        self._lp_seconds = 0.0
        self.epsilon = sum(budgets)
        self.name = "MSM"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        epsilon: float,
        granularity: int,
        prior: GridPrior,
        rho: float = 0.8,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        max_height: int = 16,
        spanner_dilation: float | None = None,
        resilience: ResilienceConfig | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
    ) -> "MultiStepMechanism":
        """Allocate the budget (Algorithm 2) and build MSM over a GIHI.

        The index height is whatever the allocator decides; the prior's
        grid provides the domain bounds.
        """
        plan = allocate_budget(
            epsilon,
            granularity,
            prior.grid.bounds.side,
            rho=rho,
            max_height=max_height,
        )
        return cls.from_plan(
            plan,
            prior,
            dq=dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
            resilience=resilience,
            solver=solver,
            degrade=degrade,
            guard=guard,
        )

    @classmethod
    def from_plan(
        cls,
        plan: BudgetPlan,
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
        resilience: ResilienceConfig | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
    ) -> "MultiStepMechanism":
        """Build MSM over a GIHI shaped by an existing budget plan."""
        index = HierarchicalGrid(
            prior.grid.bounds, plan.granularity, plan.height
        )
        msm = cls(
            index,
            plan.budgets,
            prior,
            dq=dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
            resilience=resilience,
            solver=solver,
            degrade=degrade,
            guard=guard,
        )
        msm._plan = plan
        return msm

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    _plan: BudgetPlan | None = None

    @property
    def index(self) -> SpatialIndex:
        """The hierarchical index MSM walks."""
        return self._index

    @property
    def budgets(self) -> tuple[float, ...]:
        """Per-level budgets, top first."""
        return self._budgets

    @property
    def plan(self) -> BudgetPlan | None:
        """The budget plan, when MSM was built through the allocator."""
        return self._plan

    @property
    def prior(self) -> GridPrior:
        """The global fine-grained prior."""
        return self._prior

    @property
    def cache(self) -> NodeMechanismCache:
        """The per-node mechanism cache."""
        return self._cache

    @property
    def solver(self) -> ResilientSolver:
        """The resilient LP solver every per-level OPT goes through."""
        return self._solver

    @property
    def lp_seconds(self) -> float:
        """Cumulative wall-clock spent solving per-node LPs."""
        return self._lp_seconds

    @property
    def height(self) -> int:
        """Number of levels the walk descends."""
        return len(self._budgets)

    # ------------------------------------------------------------------
    # the walk
    # ------------------------------------------------------------------
    def sample(self, x: Point, rng: np.random.Generator) -> Point:
        return self.sample_with_report(x, rng).point

    def sample_with_trace(
        self, x: Point, rng: np.random.Generator
    ) -> tuple[Point, list[StepTrace]]:
        """Sanitise ``x`` and return the per-level walk trace."""
        result = self.sample_with_report(x, rng)
        return (result.point, list(result.trace))

    def sample_with_report(
        self, x: Point, rng: np.random.Generator
    ) -> WalkResult:
        """Sanitise ``x`` with the full trace and degradation report.

        Every step matrix sampled here has passed the privacy guard (at
        that level's epsilon) when guarding is enabled; the
        :class:`~repro.core.resilience.DegradationReport` lists exactly
        the levels served by a substituted fallback mechanism.
        """
        node = self._index.root
        trace: list[StepTrace] = []
        substitutions: list[DegradedNode] = []
        for level, eps in enumerate(self._budgets, start=1):
            children = self._index.children(node)
            if not children:
                break
            entry = self._step_entry(node, level, children)
            x_hat, was_random = self._x_hat_index(node, x, len(children), rng)
            reported = entry.matrix.sample(x_hat, rng)
            trace.append(
                StepTrace(
                    level=level,
                    node_path=node.path,
                    x_hat_index=x_hat,
                    x_hat_random=was_random,
                    reported_index=reported,
                    degraded=entry.degraded,
                    mechanism=entry.source,
                )
            )
            if entry.degraded:
                substitutions.append(
                    DegradedNode(
                        node_path=node.path,
                        level=level,
                        epsilon=eps,
                        fallback=entry.source,
                        reason=entry.reason or "",
                    )
                )
            node = children[reported]
        if not trace:
            raise MechanismError("index root has no children; nothing to report")
        return WalkResult(
            point=node.bounds.center,
            trace=tuple(trace),
            degradation=DegradationReport(tuple(substitutions)),
        )

    # ------------------------------------------------------------------
    # the batch walk
    # ------------------------------------------------------------------
    def sanitize_batch(
        self, xs: Sequence[Point], rng: np.random.Generator
    ) -> list[WalkResult]:
        """Sanitise many locations in one vectorised walk.

        Semantically equivalent to ``[self.sample_with_report(x, rng)
        for x in xs]`` — every point gets its own independent walk, full
        :class:`StepTrace` provenance and per-point
        :class:`~repro.core.resilience.DegradationReport` — but
        restructured for throughput: at each level the active points are
        grouped by their current index node, the cache is warmed once
        per distinct node (each level LP solved exactly once, through
        the resilient chain), and all of a group's draws are sampled in
        one vectorised CDF inversion over the cached row-stochastic
        matrix instead of one ``rng.choice`` per point.

        The random stream is consumed in a different order than the
        scalar loop, so individual outputs differ under a shared seed;
        the per-point output *distribution* is identical (verified
        statistically in ``tests/test_statistical.py``).  Degradation
        applies per node: when a node's solve is unrecoverable, exactly
        the points walking through that node carry the substituted
        mechanism in their traces, and only those.
        """
        points = list(xs)
        if not points:
            return []
        if not self._index.children(self._index.root):
            raise MechanismError("index root has no children; nothing to report")
        n = len(points)
        coords = np.asarray([(p.x, p.y) for p in points], dtype=float)
        nodes: list[IndexNode] = [self._index.root] * n
        traces: list[list[StepTrace]] = [[] for _ in range(n)]
        substitutions: list[list[DegradedNode]] = [[] for _ in range(n)]
        active = list(range(n))
        for level, eps in enumerate(self._budgets, start=1):
            if not active:
                break
            groups: dict[tuple[int, ...], list[int]] = {}
            for i in active:
                groups.setdefault(nodes[i].path, []).append(i)
            group_nodes = {
                path: nodes[idxs[0]] for path, idxs in groups.items()
            }
            children_of = {
                path: self._index.children(node)
                for path, node in group_nodes.items()
            }
            # Warm-up: every distinct internal node solved exactly once
            # (bulk get-or-build), before any point samples from it.
            entries = self._cache.get_or_build_many(
                [path for path, kids in children_of.items() if kids],
                lambda path: self._solve_step(
                    group_nodes[path], level, children_of[path]
                ),
            )
            next_active: list[int] = []
            for path, idxs in groups.items():
                children = children_of[path]
                if not children:
                    continue  # bottomed out early (adaptive indexes)
                entry = entries[path]
                x_hat = self._index.locate_child_indices(
                    group_nodes[path], coords[idxs]
                )
                drifted = x_hat < 0
                n_drifted = int(drifted.sum())
                if n_drifted:
                    x_hat[drifted] = rng.integers(
                        len(children), size=n_drifted
                    )
                reported = entry.matrix.sample_rows(x_hat, rng)
                for pos, i in enumerate(idxs):
                    traces[i].append(
                        StepTrace(
                            level=level,
                            node_path=path,
                            x_hat_index=int(x_hat[pos]),
                            x_hat_random=bool(drifted[pos]),
                            reported_index=int(reported[pos]),
                            degraded=entry.degraded,
                            mechanism=entry.source,
                        )
                    )
                    if entry.degraded:
                        substitutions[i].append(
                            DegradedNode(
                                node_path=path,
                                level=level,
                                epsilon=eps,
                                fallback=entry.source,
                                reason=entry.reason or "",
                            )
                        )
                    nodes[i] = children[reported[pos]]
                next_active.extend(idxs)
            active = next_active
        return [
            WalkResult(
                point=nodes[i].bounds.center,
                trace=tuple(traces[i]),
                degradation=DegradationReport(tuple(substitutions[i])),
            )
            for i in range(n)
        ]

    def sample_many(
        self, xs: list[Point], rng: np.random.Generator
    ) -> list[Point]:
        """Batch sanitisation via the vectorised walk (same distribution
        as per-point :meth:`sample`, far higher throughput)."""
        return [walk.point for walk in self.sanitize_batch(xs, rng)]

    def degradation_summary(self) -> DegradationReport:
        """Substitutions across every node solved so far (whole cache)."""
        substitutions = []
        for path, entry in sorted(self._cache.degraded_entries().items()):
            substitutions.append(
                DegradedNode(
                    node_path=path,
                    level=entry.level if entry.level is not None else len(path) + 1,
                    epsilon=entry.epsilon if entry.epsilon is not None else 0.0,
                    fallback=entry.source,
                    reason=entry.reason or "",
                )
            )
        return DegradationReport(tuple(substitutions))

    def reported_distribution(self, x: Point) -> tuple[list[Point], np.ndarray]:
        """Exact output distribution of the walk for actual location ``x``.

        Expands the full walk tree (``fanout^height`` leaves), folding
        the lines-9-10 random fallback in closed form: when the current
        node does not contain ``x``, the effective mechanism row is the
        uniform mixture of all rows.  Used for exact expected-loss
        computation and for the privacy product-matrix tests.
        """
        points: list[Point] = []
        probs: list[float] = []

        def walk(node: IndexNode, level: int, mass: float) -> None:
            children = self._index.children(node)
            if level > len(self._budgets) or not children:
                points.append(node.bounds.center)
                probs.append(mass)
                return
            matrix = self._step_mechanism(node, level, children)
            child_of_x = self._index.locate_child(node, x)
            if child_of_x is not None:
                row = matrix.row(child_of_x.path[-1])
            else:
                row = matrix.k.mean(axis=0)
            for j, child in enumerate(children):
                p = float(row[j])
                if p > 0:
                    walk(child, level + 1, mass * p)

        walk(self._index.root, 1, 1.0)
        return (points, np.asarray(probs))

    def expected_loss(self, x: Point, dq: Metric | None = None) -> float:
        """Exact expected utility loss for actual location ``x``."""
        metric = dq if dq is not None else self._dq
        points, probs = self.reported_distribution(x)
        losses = np.asarray([metric(x, z) for z in points])
        return float(probs @ losses)

    def to_matrix(self, guard: bool = False) -> MechanismMatrix:
        """The exact end-to-end mechanism over leaf-cell centres.

        Requires MSM over a :class:`~repro.grid.hierarchy.HierarchicalGrid`
        (leaf cells then form a regular grid whose centres serve as both
        X and Z).  The result is the dense product of the whole walk —
        it makes MSM a first-class citizen of everything that consumes
        matrices: GeoInd verification, Bayesian remapping, inference
        attacks and exact expected-loss computation.  Cost is
        O(leaves * fanout^height); meant for analysis-scale instances,
        not the online path.

        With ``guard=True`` the product matrix is additionally verified
        to be ``sum(budgets)``-GeoInd under plain ``dx`` before being
        returned.  The default leaves it off because MSM's rigorous
        guarantee is stated against the *hierarchical* metric
        (:mod:`repro.privacy.hierarchical`); the per-step matrices the
        online path samples from are always guarded regardless.
        """
        from repro.grid.hierarchy import HierarchicalGrid

        index = self._index
        if not isinstance(index, HierarchicalGrid):
            raise MechanismError(
                "to_matrix requires MSM over a HierarchicalGrid"
            )
        depth = min(self.height, index.height)
        leaf_grid = index.level_grid(depth)
        centers = leaf_grid.centers()
        k = np.zeros((len(centers), len(centers)))
        for i, x in enumerate(centers):
            points, probs = self.reported_distribution(x)
            for p, mass in zip(points, probs):
                k[i, leaf_grid.locate(p).index] += mass
        return guarded_matrix(
            centers,
            centers,
            k,
            epsilon=self.epsilon if guard else None,
            dx=self._dx,
        )

    # ------------------------------------------------------------------
    # offline precomputation
    # ------------------------------------------------------------------
    def precompute(self, max_nodes: int | None = None) -> int:
        """Solve and cache every node mechanism reachable by a walk.

        Returns the number of newly solved nodes.  ``max_nodes`` caps
        the work (useful for very deep adaptive indexes); uncapped, the
        cache holds one matrix per internal node above the walk depth —
        the paper's "tens of megabytes" offline bundle.
        """
        solved = 0
        queue: list[tuple[IndexNode, int]] = [(self._index.root, 1)]
        while queue:
            node, level = queue.pop()
            if level > len(self._budgets):
                continue
            children = self._index.children(node)
            if not children:
                continue
            if node.path not in self._cache:
                self._step_mechanism(node, level, children)
                solved += 1
                if max_nodes is not None and solved >= max_nodes:
                    return solved
            queue.extend((child, level + 1) for child in children)
        return solved

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _x_hat_index(
        self,
        node: IndexNode,
        x: Point,
        n_children: int,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """Algorithm 1 lines 8-10: snap ``x`` or pick a random child."""
        child = self._index.locate_child(node, x)
        if child is not None:
            return (child.path[-1], False)
        return (int(rng.integers(n_children)), True)

    def _child_prior(self, children: Sequence[IndexNode]) -> np.ndarray:
        """Global prior mass restricted to ``children`` and renormalised."""
        centers = self._prior.grid.centers_array()
        probs = self._prior.probabilities
        masses = np.zeros(len(children))
        for j, child in enumerate(children):
            b = child.bounds
            inside = (
                (centers[:, 0] >= b.min_x)
                & (centers[:, 0] < b.max_x)
                & (centers[:, 1] >= b.min_y)
                & (centers[:, 1] < b.max_y)
            )
            masses[j] = probs[inside].sum()
        total = masses.sum()
        if total <= 0:
            return np.full(len(children), 1.0 / len(children))
        return masses / total

    def _step_mechanism(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> MechanismMatrix:
        """The validated step matrix for one node (see :meth:`_step_entry`)."""
        return self._step_entry(node, level, children).matrix

    def _step_entry(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> CacheEntry:
        """The step mechanism for one node, cached by node path.

        Fail-closed contract: the returned entry's matrix has either
        been solved optimally through the resilient fallback chain or —
        when that chain is exhausted and degradation is enabled —
        replaced by the closed-form exponential mechanism at the same
        per-level epsilon.  Either way the privacy guard validates it
        before it is cached; a guard violation raises instead of ever
        letting the walk sample from a bad matrix.
        """
        cached = self._cache.entry(node.path)
        if cached is not None:
            return cached
        matrix, provenance = self._solve_step(node, level, children)
        return self._cache.put(node.path, matrix, **provenance)

    def _solve_step(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> tuple[MechanismMatrix, dict]:
        """Solve (or degrade to) one node's step mechanism, guard it, and
        return it with the provenance dict :meth:`NodeMechanismCache.put`
        expects.  Shared by the scalar walk (via :meth:`_step_entry`) and
        the batch walk (via the cache's bulk get-or-build)."""
        locations = [child.bounds.center for child in children]
        sub_prior = self._child_prior(children)
        eps = self._budgets[level - 1]
        start = time.perf_counter()
        degraded_reason: str | None = None
        try:
            try:
                result = optimal_mechanism_from_locations(
                    eps,
                    locations,
                    sub_prior,
                    self._dq,
                    dx=self._dx,
                    backend=self._backend,
                    spanner_dilation=self._spanner_dilation,
                    solver=self._solver,
                )
                matrix = result.matrix
            except SolverError as exc:
                if not self._degrade:
                    raise
                degraded_reason = f"{type(exc).__name__}: {exc}"
                matrix = exponential_matrix_from_locations(
                    locations, eps, dx=self._dx
                )
                warnings.warn(
                    DegradedModeWarning(
                        f"level-{level} OPT solve failed at node "
                        f"{node.path}; serving the exponential fallback "
                        f"at eps={eps:.4g} (utility is sub-optimal, "
                        f"privacy unchanged)"
                    ),
                    stacklevel=2,
                )
        finally:
            self._lp_seconds += time.perf_counter() - start
        if self._guard:
            guard_mechanism(matrix, eps, dx=self._dx)
        return (
            matrix,
            dict(
                degraded=degraded_reason is not None,
                source="exponential" if degraded_reason is not None else "opt",
                reason=degraded_reason,
                level=level,
                epsilon=eps,
            ),
        )
