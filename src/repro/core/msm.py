"""The Multi-Step Mechanism (MSM) — Algorithm 1 of the paper.

MSM sanitises a location by walking a hierarchical spatial index from
the root: at every level it solves (or fetches from cache) the *optimal
mechanism* over the current node's children, snaps the true location to
the child containing it (or a uniformly random child when the walk has
already drifted away — Algorithm 1, lines 9-10), samples a reported
child from the mechanism row, and descends into it.  The final level's
sampled centre is the reported location.

Each level consumes a slice of the privacy budget; by sequential
composition the full walk satisfies GeoInd at the budget sum.  Utility
is protected by the budget-allocation model of
:mod:`repro.core.budget`, which keeps the probability of "staying on
track" at least ``rho`` per level for as long as the budget lasts.

The walk itself lives in :mod:`repro.core.engine`: this class is a thin
facade over one :class:`~repro.core.engine.WalkEngine`, so the scalar
path (:meth:`MultiStepMechanism.sample_with_report`) and the batch path
(:meth:`MultiStepMechanism.sanitize_batch`) are the *same* staged
pipeline — a scalar call is a batch of one, byte-identical under a
shared seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import BudgetError, MechanismError
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.index import IndexNode, SpatialIndex
from repro.mechanisms.base import Mechanism
from repro.mechanisms.matrix import MechanismMatrix
from repro.priors.base import GridPrior
from repro.privacy.guard import guarded_matrix
from repro.core.budget.allocation import BudgetPlan, allocate_budget
from repro.core.cache import CacheEntry, NodeMechanismCache
from repro.core.engine import (
    ExecutionPolicy,
    OptimalRemapPostProcessor,
    PostProcessor,
    StepTrace,
    TelemetrySummary,
    WalkEngine,
    WalkReport,
    WalkResult,
)
from repro.obs import Observability
from repro.core.resilience import (
    DegradationReport,
    DegradedNode,
    ResilienceConfig,
    ResilientSolver,
)

__all__ = [
    "MultiStepMechanism",
    "StepTrace",
    "TelemetrySummary",
    "WalkReport",
    "WalkResult",
]


class MultiStepMechanism(Mechanism):
    """MSM over any :class:`~repro.grid.index.SpatialIndex`.

    Parameters
    ----------
    index:
        The hierarchical partition to walk (a
        :class:`~repro.grid.hierarchy.HierarchicalGrid` for the paper's
        GIHI; quadtree/k-d variants for the future-work ablations).
    budgets:
        Per-level privacy budgets, top level first.  The walk stops at
        ``len(budgets)`` levels or at a leaf, whichever comes first.
    prior:
        Global prior on a fine regular grid over the same domain; each
        step restricts and renormalises it to the node's children.
    dq:
        Utility-loss metric optimised by each per-step OPT.
    dx:
        Distinguishability metric of the GeoInd constraints.
    backend:
        LP backend name (see :mod:`repro.lp`); becomes the *first* entry
        of the resilient solver's fallback chain.
    spanner_dilation:
        Optional constraint-reduction dilation forwarded to each OPT.
    resilience:
        Fallback-chain policy; defaults to the standard chain starting
        at ``backend``.  Ignored when an explicit ``solver`` is given.
    solver:
        A pre-built :class:`~repro.core.resilience.ResilientSolver`
        (the fault-injection harness passes one wrapping a scripted
        solve function).
    degrade:
        When True (default), a level whose OPT solve is unrecoverable
        is served by the closed-form exponential mechanism at that
        level's epsilon — same privacy, same budget spend, lower
        utility — and the substitution is recorded.  When False the
        walk raises instead (strict fail-stop).
    guard:
        When True (default), every step matrix is validated by the
        privacy guard before it may be sampled from; violations raise
        :class:`~repro.exceptions.PrivacyViolationError`.
    cache:
        An externally-owned :class:`NodeMechanismCache` (the fault
        harness uses this to inject cache faults); a fresh one by
        default.
    executor:
        The :class:`~repro.core.engine.ExecutionPolicy` scheduling
        batch walks — :class:`~repro.core.engine.SerialExecution` by
        default, :class:`~repro.core.engine.ShardedExecution` for
        multi-core process sharding.
    postprocessor:
        An optional :class:`~repro.core.engine.PostProcessor` applied
        to every walk output (the finalise stage).
    remap:
        Convenience flag: True wires the optimal Bayesian remap
        post-processor (ignored when ``postprocessor`` is given).

    Use :meth:`build` for the end-to-end constructor that also runs the
    budget allocator.
    """

    def __init__(
        self,
        index: SpatialIndex,
        budgets: Sequence[float],
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
        resilience: ResilienceConfig | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
        cache: NodeMechanismCache | None = None,
        executor: ExecutionPolicy | None = None,
        postprocessor: PostProcessor | None = None,
        remap: bool = False,
        obs: Observability | None = None,
    ):
        budgets = tuple(float(b) for b in budgets)
        if not budgets:
            raise BudgetError("MSM needs at least one level budget")
        if any(b <= 0 for b in budgets):
            raise BudgetError(f"all level budgets must be positive: {budgets}")
        if solver is None:
            config = (
                resilience
                if resilience is not None
                else ResilienceConfig.starting_with(backend)
            )
            solver = ResilientSolver(config)
        self._engine = WalkEngine(
            index,
            budgets,
            prior,
            dq=dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
            solver=solver,
            degrade=degrade,
            guard=guard,
            cache=cache,
            executor=executor,
            postprocessor=postprocessor,
            obs=obs,
        )
        if remap and postprocessor is None:
            self._engine.postprocessor = OptimalRemapPostProcessor(self)
        self.epsilon = sum(budgets)
        self.name = "MSM"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        epsilon: float,
        granularity: int,
        prior: GridPrior,
        rho: float = 0.8,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        max_height: int = 16,
        spanner_dilation: float | None = None,
        resilience: ResilienceConfig | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
        cache: NodeMechanismCache | None = None,
        executor: ExecutionPolicy | None = None,
        postprocessor: PostProcessor | None = None,
        remap: bool = False,
        obs: Observability | None = None,
    ) -> "MultiStepMechanism":
        """Allocate the budget (Algorithm 2) and build MSM over a GIHI.

        The index height is whatever the allocator decides; the prior's
        grid provides the domain bounds.
        """
        plan = allocate_budget(
            epsilon,
            granularity,
            prior.grid.bounds.side,
            rho=rho,
            max_height=max_height,
        )
        return cls.from_plan(
            plan,
            prior,
            dq=dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
            resilience=resilience,
            solver=solver,
            degrade=degrade,
            guard=guard,
            cache=cache,
            executor=executor,
            postprocessor=postprocessor,
            remap=remap,
            obs=obs,
        )

    @classmethod
    def from_plan(
        cls,
        plan: BudgetPlan,
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
        resilience: ResilienceConfig | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
        cache: NodeMechanismCache | None = None,
        executor: ExecutionPolicy | None = None,
        postprocessor: PostProcessor | None = None,
        remap: bool = False,
        obs: Observability | None = None,
    ) -> "MultiStepMechanism":
        """Build MSM over a GIHI shaped by an existing budget plan."""
        index = HierarchicalGrid(
            prior.grid.bounds, plan.granularity, plan.height
        )
        msm = cls(
            index,
            plan.budgets,
            prior,
            dq=dq,
            dx=dx,
            backend=backend,
            spanner_dilation=spanner_dilation,
            resilience=resilience,
            solver=solver,
            degrade=degrade,
            guard=guard,
            cache=cache,
            executor=executor,
            postprocessor=postprocessor,
            remap=remap,
            obs=obs,
        )
        msm._plan = plan
        if obs is not None and obs.enabled:
            obs.metrics.gauge("repro_budget_rho_target").set(plan.rho)
        return msm

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    _plan: BudgetPlan | None = None

    @property
    def engine(self) -> WalkEngine:
        """The staged walk engine everything below routes through."""
        return self._engine

    @property
    def index(self) -> SpatialIndex:
        """The hierarchical index MSM walks."""
        return self._engine.index

    @property
    def budgets(self) -> tuple[float, ...]:
        """Per-level budgets, top first."""
        return self._engine.budgets

    @property
    def plan(self) -> BudgetPlan | None:
        """The budget plan, when MSM was built through the allocator."""
        return self._plan

    @property
    def prior(self) -> GridPrior:
        """The global fine-grained prior."""
        return self._engine.prior

    @property
    def dq(self) -> Metric:
        """The utility-loss metric each per-step OPT optimises."""
        return self._engine.dq

    @property
    def cache(self) -> NodeMechanismCache:
        """The per-node mechanism cache."""
        return self._engine.cache

    @property
    def solver(self) -> ResilientSolver:
        """The resilient LP solver every per-level OPT goes through."""
        return self._engine.solver

    @property
    def spanner_dilation(self) -> float | None:
        """The Δ-spanner dilation cold LP builds use (None = exact LP)."""
        return self._engine.spanner_dilation

    @property
    def lp_seconds(self) -> float:
        """Cumulative wall-clock spent solving per-node LPs."""
        return self._engine.lp_seconds

    @property
    def observability(self) -> Observability:
        """The engine's observability handle (the no-op by default)."""
        return self._engine.observability

    @property
    def height(self) -> int:
        """Number of levels the walk descends."""
        return len(self._engine.budgets)

    @property
    def executor(self) -> ExecutionPolicy:
        """The execution policy scheduling batch walks."""
        return self._engine.executor

    @executor.setter
    def executor(self, policy: ExecutionPolicy) -> None:
        self._engine.executor = policy

    @property
    def postprocessor(self) -> PostProcessor | None:
        """The finalise-stage post-processor, when one is configured."""
        return self._engine.postprocessor

    def enable_remap(self, dq: Metric | None = None) -> None:
        """Wire the optimal Bayesian remap into the finalise stage.

        Works on any MSM over a hierarchical grid, including one
        restored from an offline bundle; the remap table is built
        lazily on the first sanitisation.
        """
        self._engine.postprocessor = OptimalRemapPostProcessor(self, dq=dq)

    # ------------------------------------------------------------------
    # the walk — every entry point is the same engine pipeline
    # ------------------------------------------------------------------
    def sample(self, x: Point, rng: np.random.Generator) -> Point:
        return self.sample_with_report(x, rng).point

    def sample_with_trace(
        self, x: Point, rng: np.random.Generator
    ) -> tuple[Point, list[StepTrace]]:
        """Sanitise ``x`` and return the per-level walk trace."""
        result = self.sample_with_report(x, rng)
        return (result.point, list(result.trace))

    def sample_with_report(
        self, x: Point, rng: np.random.Generator
    ) -> WalkResult:
        """Sanitise ``x`` with the full trace and degradation report.

        A batch of one through the engine — byte-identical to
        ``sanitize_batch([x], rng)[0]`` under a shared seed.  Every
        step matrix sampled here has passed the privacy guard (at that
        level's epsilon) when guarding is enabled; the
        :class:`~repro.core.resilience.DegradationReport` lists exactly
        the levels served by a substituted fallback mechanism.
        """
        return self._engine.run([x], rng)[0]

    def sanitize_batch(
        self,
        xs: Sequence[Point],
        rng: np.random.Generator,
        trace: bool = True,
    ) -> list[WalkResult]:
        """Sanitise many locations in one engine run.

        Every point gets its own independent walk, full
        :class:`StepTrace` provenance and per-point
        :class:`~repro.core.resilience.DegradationReport`, while the
        engine restructures the work for throughput: points are
        grouped by node at each level, the cache is warmed once per
        distinct node (each level LP solved exactly once, through the
        resilient chain), and each group's draws happen in one
        vectorised CDF inversion.  Under the default
        :class:`~repro.core.engine.SerialExecution` the whole batch
        shares one random stream; a
        :class:`~repro.core.engine.ShardedExecution` partitions the
        batch across worker processes with independent spawned streams
        (distribution-identical, not bit-identical — verified
        statistically in ``tests/test_engine.py``).  Degradation
        applies per node: when a node's solve is unrecoverable,
        exactly the points walking through that node carry the
        substituted mechanism in their traces, and only those.

        ``trace=False`` skips per-point :class:`StepTrace`
        materialisation — sampled points, degradation reports and
        telemetry are unchanged, but results carry empty traces (the
        hot-path configuration; on the compiled kernel the walk then
        touches no per-point Python objects until the final results).
        """
        return self._engine.run(xs, rng, trace=trace)

    def sanitize_batch_report(
        self,
        xs: Sequence[Point],
        rng: np.random.Generator,
        trace: bool = True,
    ) -> WalkReport:
        """Like :meth:`sanitize_batch`, wrapped in a
        :class:`~repro.core.engine.WalkReport` whose ``telemetry``
        summarises the batch's metrics delta when observability is
        enabled (None otherwise)."""
        return self._engine.run_report(xs, rng, trace=trace)

    def sample_many(
        self, xs: Sequence[Point], rng: np.random.Generator
    ) -> list[Point]:
        """Batch sanitisation via the vectorised walk (same distribution
        as per-point :meth:`sample`, far higher throughput).  Nobody
        reads traces here, so none are materialised."""
        return [
            walk.point for walk in self.sanitize_batch(xs, rng, trace=False)
        ]

    def degradation_summary(self) -> DegradationReport:
        """Substitutions across every node solved so far (whole cache)."""
        substitutions = []
        for path, entry in sorted(self.cache.degraded_entries().items()):
            substitutions.append(
                DegradedNode(
                    node_path=path,
                    level=entry.level if entry.level is not None else len(path) + 1,
                    epsilon=entry.epsilon if entry.epsilon is not None else 0.0,
                    fallback=entry.source,
                    reason=entry.reason or "",
                )
            )
        return DegradationReport(tuple(substitutions))

    def _walk_distribution(self, x: Point) -> tuple[list[IndexNode], np.ndarray]:
        """Exact stop-node distribution of the walk for location ``x``.

        Expands the full walk tree (``fanout^height`` leaves), folding
        the lines-9-10 random fallback in closed form: when the current
        node does not contain ``x``, the effective mechanism row is the
        uniform mixture of all rows.  Returns the nodes at which the
        walk terminates with their probabilities; index-agnostic (only
        ``children`` / ``locate_child`` are used).
        """
        index = self.index
        budgets = self.budgets
        stops: list[IndexNode] = []
        probs: list[float] = []

        def walk(node: IndexNode, level: int, mass: float) -> None:
            children = index.children(node)
            if level > len(budgets) or not children:
                stops.append(node)
                probs.append(mass)
                return
            matrix = self._step_mechanism(node, level, children)
            child_of_x = index.locate_child(node, x)
            if child_of_x is not None:
                row = matrix.row(child_of_x.path[-1])
            else:
                row = matrix.k.mean(axis=0)
            for j, child in enumerate(children):
                p = float(row[j])
                if p > 0:
                    walk(child, level + 1, mass * p)

        walk(index.root, 1, 1.0)
        return (stops, np.asarray(probs))

    def reported_distribution(self, x: Point) -> tuple[list[Point], np.ndarray]:
        """Exact output distribution of the walk for actual location ``x``.

        The point of each stop node is its ``center`` (box centre for
        planar indexes, medoid vertex for graph partitions).  This is
        the distribution of the *walk itself* — the finalise stage, a
        deterministic output transformation, is intentionally not
        folded in.  Used for exact expected-loss computation and for
        the privacy product-matrix tests.
        """
        stops, probs = self._walk_distribution(x)
        return ([node.center for node in stops], probs)

    def stop_nodes(self) -> list[IndexNode]:
        """Nodes at which walks can terminate, in depth-first order.

        These are the leaves of the index truncated at the budgeted
        height — the exact support of :meth:`reported_distribution` for
        every input.
        """
        index = self.index
        max_level = len(self.budgets)
        out: list[IndexNode] = []
        stack = [(index.root, 1)]
        while stack:
            node, level = stack.pop()
            children = index.children(node)
            if level > max_level or not children:
                out.append(node)
            else:
                stack.extend((c, level + 1) for c in reversed(children))
        return out

    def expected_loss(self, x: Point, dq: Metric | None = None) -> float:
        """Exact expected utility loss for actual location ``x``."""
        metric = dq if dq is not None else self.dq
        points, probs = self.reported_distribution(x)
        losses = np.asarray([metric(x, z) for z in points])
        return float(probs @ losses)

    def to_matrix(self, guard: bool = False) -> MechanismMatrix:
        """The exact end-to-end mechanism over the walk's stop points.

        Over a :class:`~repro.grid.hierarchy.HierarchicalGrid` the stop
        points are the leaf-cell centres in row-major grid order; over
        any other index (STR, k-d, graph partition) they are the
        :meth:`stop_nodes` representative points in depth-first order.
        Either way the result is the dense product of the whole walk —
        it makes MSM a first-class citizen of everything that consumes
        matrices: GeoInd verification, Bayesian remapping, inference
        attacks and exact expected-loss computation.  Cost is
        O(leaves * fanout^height); meant for analysis-scale instances,
        not the online path.

        With ``guard=True`` the product matrix is additionally verified
        to be ``sum(budgets)``-GeoInd under plain ``dx`` before being
        returned.  The default leaves it off because MSM's rigorous
        guarantee is stated against the *hierarchical* metric
        (:mod:`repro.privacy.hierarchical`); the per-step matrices the
        online path samples from are always guarded regardless.
        """
        index = self.index
        if isinstance(index, HierarchicalGrid):
            depth = min(self.height, index.height)
            leaf_grid = index.level_grid(depth)
            centers = leaf_grid.centers()
            k = np.zeros((len(centers), len(centers)))
            for i, x in enumerate(centers):
                points, probs = self.reported_distribution(x)
                for p, mass in zip(points, probs):
                    k[i, leaf_grid.locate(p).index] += mass
            return guarded_matrix(
                centers,
                centers,
                k,
                epsilon=self.epsilon if guard else None,
                dx=self._engine.dx,
            )
        stops = self.stop_nodes()
        row_of = {node.path: j for j, node in enumerate(stops)}
        centers = [node.center for node in stops]
        k = np.zeros((len(stops), len(stops)))
        for i, x in enumerate(centers):
            nodes, probs = self._walk_distribution(x)
            for node, mass in zip(nodes, probs):
                k[i, row_of[node.path]] += mass
        return guarded_matrix(
            centers,
            centers,
            k,
            epsilon=self.epsilon if guard else None,
            dx=self._engine.dx,
        )

    # ------------------------------------------------------------------
    # offline precomputation
    # ------------------------------------------------------------------
    def precompute(self, max_nodes: int | None = None) -> int:
        """Solve and cache every node mechanism reachable by a walk.

        Returns the number of newly solved nodes.  ``max_nodes`` caps
        the work (useful for very deep adaptive indexes); uncapped, the
        cache holds one matrix per internal node above the walk depth —
        the paper's "tens of megabytes" offline bundle.
        """
        solved = 0
        queue: list[tuple[IndexNode, int]] = [(self.index.root, 1)]
        while queue:
            node, level = queue.pop()
            if level > self.height:
                continue
            children = self.index.children(node)
            if not children:
                continue
            if node.path not in self.cache:
                self._step_mechanism(node, level, children)
                solved += 1
                if max_nodes is not None and solved >= max_nodes:
                    return solved
            queue.extend((child, level + 1) for child in children)
        return solved

    # ------------------------------------------------------------------
    # internals — thin delegations into the engine's resolve stage
    # ------------------------------------------------------------------
    def _step_mechanism(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> MechanismMatrix:
        """The validated step matrix for one node (see :meth:`_step_entry`)."""
        return self._step_entry(node, level, children).matrix

    def _step_entry(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> CacheEntry:
        """The step mechanism for one node, via the engine's resolve
        stage (cache by node path, resilient solve on a miss, guard
        before it may be sampled from)."""
        return self._engine.resolve(node, level, children)
