"""Persistent mechanism store: warm-start engines across runs.

The node cache makes repeat queries cheap *within* a process; this
module makes them cheap *across* processes.  A
:class:`MechanismStore` is a directory of offline bundles
(:mod:`repro.core.bundle`), keyed by a **configuration fingerprint** —
a SHA-256 over everything that determines the solved matrices:

* index shape (bounds, per-level fanout, height),
* the per-level epsilon split,
* the utility and distinguishability metrics,
* the Δ-spanner dilation the cold LP builds use (``None`` = exact),
* a hash of the modelling prior.

An engine warm-starting from the store therefore can only ever adopt
matrices solved for *exactly* its own configuration; any drift — a
re-allocated budget, a different prior, a resized grid — lands on a
different fingerprint and misses.  Defence in depth: even on a
fingerprint hit the stored epsilon split and metric are re-verified
against the requesting mechanism (``load_bundle(expect_budgets=…,
expect_metric=…)``) and the stored prior is re-hashed, so a renamed or
stale file is rejected rather than silently served.  Every restored
matrix passes the privacy guard at load, exactly as bundles do.

Crash model: ``save`` fsyncs the temp file *and* the directory around
the atomic rename, so a power cut can never publish a zero-length or
torn bundle under the final name; each bundle carries a SHA-256
content checksum in a ``.sha256`` sidecar.  A bundle that fails its
checksum — or fails to load at all (truncated zip, flipped bytes, a
matrix failing the privacy guard) — is **quarantined** to a
``.quarantine/`` subdirectory (with a ``repro_store_quarantined_total``
metric) and treated as a store miss, so ``get_or_build`` rebuilds it
instead of raising into the serving path.  Stale-*configuration*
entries (a readable bundle solved for different budgets/metric/prior)
still raise: they indicate operator error, not corruption, and must
never be silently rebuilt over.

This is the paper's Section 3.1 deployment model applied server-side:
precompute once, persist, and let every later engine skip the LP solves
entirely (Bordenabe et al. show why re-solving is the cost to avoid;
Chatzikokolakis et al. make precompute-plus-reuse the canonical
throughput lever).

Alongside each bundle the store persists the **compiled walk arena**
(:mod:`repro.core.kernel`) in a ``.kernel.npz`` sidecar, so a
warm-started server starts on the fused array path without paying the
compile.  The sidecar is never trusted on its own: at warm start the
engine recompiles from the just-adopted cache and the persisted arena
must match that fresh compile *bitwise* (:meth:`CompiledWalk.equals`);
a mismatched or unreadable sidecar is quarantined while the bundle —
which was independently checksummed and guard-verified — keeps
serving.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import MechanismError
from repro.obs import NOOP, Observability
from repro.core.bundle import load_bundle, save_bundle
from repro.core.kernel import CompiledWalk
from repro.core.ledger import fsync_directory
from repro.core.msm import MultiStepMechanism


def _file_sha256(path: str | Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _fsync_file(path: str | Path) -> None:
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def prior_hash(prior) -> str:
    """SHA-256 of a grid prior (probabilities + grid geometry)."""
    h = hashlib.sha256()
    b = prior.grid.bounds
    h.update(
        repr((b.min_x, b.min_y, b.max_x, b.max_y,
              prior.grid.granularity)).encode()
    )
    h.update(prior.probabilities.tobytes())
    return h.hexdigest()


def config_fingerprint(msm: MultiStepMechanism) -> str:
    """The store key for an MSM: hash of everything the LPs depend on."""
    index = msm.index
    b = index.bounds
    h = hashlib.sha256()
    h.update(
        repr((
            # v2: spanner_dilation joined the key — matrices solved over
            # a Δ-spanner constraint subset are not interchangeable with
            # exact-LP ones, so they must never share a slot.
            "msm-config-v2",
            (b.min_x, b.min_y, b.max_x, b.max_y),
            getattr(index, "granularity", None),
            msm.height,
            msm.budgets,
            msm.dq.name,
            msm.engine.dx.name,
            msm.spanner_dilation,
        )).encode()
    )
    h.update(prior_hash(msm.prior).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class StoreRecord:
    """Outcome of one store interaction."""

    fingerprint: str
    path: Path
    #: "hit" (warm-started from disk), "built" (solved then persisted),
    #: or "saved" (explicit save)
    outcome: str
    #: node mechanisms adopted into the requesting mechanism's cache
    adopted: int
    size_bytes: int


class MechanismStore:
    """A directory of precomputed mechanism bundles keyed by fingerprint.

    Thread-safe: concurrent :meth:`get_or_build` calls for the same
    configuration serialise on a per-fingerprint lock, so the LP sweep
    runs at most once per process, and writes go through an atomic
    rename so a concurrent reader (or a crash mid-write) can never
    observe a torn file.
    """

    _obs = NOOP

    def __init__(self, root: str | Path):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fp_locks: dict[str, threading.Lock] = {}

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability handle (store traffic metrics)."""
        self._obs = obs

    def _record(self, outcome: str, adopted: int = 0) -> None:
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter(
                "repro_store_requests_total", outcome=outcome
            ).inc()
            if adopted:
                metrics.counter("repro_store_adopted_total").inc(adopted)

    def _fingerprint_lock(self, fingerprint: str) -> threading.Lock:
        with self._lock:
            lock = self._fp_locks.get(fingerprint)
            if lock is None:
                lock = self._fp_locks[fingerprint] = threading.Lock()
            return lock

    def path_for(self, msm: MultiStepMechanism) -> Path:
        """Where this mechanism's bundle lives (or would live)."""
        return self._root / f"msm-{config_fingerprint(msm)}.npz"

    def __contains__(self, msm: MultiStepMechanism) -> bool:
        return self.path_for(msm).exists()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, msm: MultiStepMechanism) -> StoreRecord:
        """Precompute (if needed) and persist ``msm``'s node mechanisms.

        The bundle is written to a temporary file, fsync'd, and
        atomically renamed into place (followed by a directory fsync),
        so concurrent readers see either the old complete file or the
        new complete file — never a torn one — and a crash right after
        the rename cannot publish a name whose *content* never reached
        disk.  A SHA-256 content checksum is published alongside in a
        ``.sha256`` sidecar, which :meth:`warm_start` verifies.
        """
        fingerprint = config_fingerprint(msm)
        target = self._root / f"msm-{fingerprint}.npz"
        fd, tmp = tempfile.mkstemp(
            dir=self._root, prefix=".tmp-", suffix=".npz"
        )
        os.close(fd)
        try:
            save_bundle(msm, tmp)
            _fsync_file(tmp)
            digest = _file_sha256(tmp)
            os.replace(tmp, target)
            fsync_directory(self._root)
            self._write_checksum(target, digest)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self._save_kernel(msm, fingerprint)
        self._record("saved")
        return StoreRecord(
            fingerprint=fingerprint,
            path=target,
            outcome="saved",
            adopted=0,
            size_bytes=target.stat().st_size,
        )

    def _write_checksum(self, target: Path, digest: str) -> None:
        """Publish the content checksum sidecar, atomically."""
        sidecar = self.checksum_path(target)
        fd, tmp = tempfile.mkstemp(
            dir=self._root, prefix=".tmp-", suffix=".sha256"
        )
        try:
            os.write(fd, (digest + "\n").encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.replace(tmp, sidecar)
            fsync_directory(self._root)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @staticmethod
    def checksum_path(bundle_path: Path) -> Path:
        """Where a bundle's content-checksum sidecar lives."""
        return bundle_path.with_name(bundle_path.name + ".sha256")

    def kernel_path_for(self, msm: MultiStepMechanism) -> Path:
        """Where this mechanism's compiled-arena sidecar lives."""
        return self._root / f"msm-{config_fingerprint(msm)}.kernel.npz"

    def _save_kernel(self, msm: MultiStepMechanism, fingerprint: str) -> None:
        """Persist the compiled walk arena beside the bundle.

        The arena is compiled from a mechanism *restored from the
        just-written bundle*, not from the builder's in-memory cache:
        :class:`MechanismMatrix` renormalises rows at construction, so
        a bundle round trip perturbs the last ulp of each kernel and
        the builder's bits can never match a warm-starter's.  Every
        loader of the same bundle file computes identical bits, so
        compiling from a restore makes the sidecar bitwise-verifiable
        at every future warm start.  An uncompilable tree just skips
        the sidecar.  Same atomic write-and-checksum discipline as
        bundles.
        """
        bundle_path = self._root / f"msm-{fingerprint}.npz"
        try:
            restored = load_bundle(
                bundle_path,
                guard=True,
                expect_budgets=msm.budgets,
                expect_metric=msm.dq,
            )
        except Exception:  # noqa: BLE001 - sidecar is best-effort
            return
        compiled = restored.engine.compile(build=False)
        if compiled is None:
            return
        target = self._root / f"msm-{fingerprint}.kernel.npz"
        fd, tmp = tempfile.mkstemp(
            dir=self._root, prefix=".tmp-", suffix=".npz"
        )
        os.close(fd)
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **compiled.to_arrays())
                fh.flush()
                os.fsync(fh.fileno())
            digest = _file_sha256(tmp)
            os.replace(tmp, target)
            fsync_directory(self._root)
            self._write_checksum(target, digest)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _adopt_kernel(self, msm: MultiStepMechanism, fingerprint: str) -> None:
        """Verify-then-adopt the compiled-arena sidecar on warm start.

        The persisted arena is *evidence*, not authority: the engine
        recompiles from the cache entries just adopted (guard-verified
        by ``load_bundle``) and only keeps serving if the sidecar
        matches that fresh compile bitwise.  A mismatch — stale file,
        bit rot below the checksum's radar, tampering — quarantines the
        sidecar; the fresh compile is kept either way, so warm-started
        engines always begin kernel-ready when their tree is compilable.
        """
        compiled = msm.engine.compile(build=False)
        path = self._root / f"msm-{fingerprint}.kernel.npz"
        if not path.exists():
            return
        if compiled is None:
            # the cache could not hold the full tree here (budget
            # eviction mid-adopt): the sidecar cannot be verified, and
            # an unverified arena must never serve — leave it on disk
            # for a configuration that can check it
            return
        try:
            with np.load(path) as data:
                stored = CompiledWalk.from_arrays(dict(data))
        except Exception as exc:  # noqa: BLE001 - any corruption shape
            self._quarantine(path, f"{type(exc).__name__}: {exc}")
            return
        if not stored.equals(compiled):
            self._quarantine(
                path,
                "kernel sidecar does not match a fresh compile of the "
                "adopted cache",
            )

    def arena_dir_for(self, msm: MultiStepMechanism) -> Path:
        """Where this mechanism's serving arena lives."""
        return self._root / f"msm-{config_fingerprint(msm)}.arena"

    def export_arena(self, msm: MultiStepMechanism, directory: Path | None = None):
        """Freeze ``msm``'s compiled walk into a serving arena.

        The multi-worker pool's workers map the arena read-only at zero
        copy (:class:`~repro.serve.arena.MechanismArena`); exporting
        through the store keys the directory by the same config
        fingerprint as the bundle and the ``.kernel.npz`` sidecar, so
        one warmed mechanism yields one arena however many pools serve
        it.  Compiles through the engine's normal resolve path
        (``build=True``), warming any missing cache entries exactly
        like a precompute.

        Returns the opened :class:`~repro.serve.arena.MechanismArena`.
        """
        from repro.serve.arena import MechanismArena

        compiled = msm.engine.compile(build=True)
        if compiled is None:
            raise MechanismError(
                "mechanism tree is not compilable into an arena "
                "(adaptive geometry, ragged fanout, or an evicting cache "
                "too small to hold the tree)"
            )
        target = directory if directory is not None else self.arena_dir_for(msm)
        arena = MechanismArena.freeze(compiled, target)
        if self._obs.enabled:
            self._obs.metrics.gauge("repro_store_arena_bytes").set(
                arena.nbytes
            )
        return arena

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt bundle (and its sidecar) out of the way.

        The bundle is renamed into ``.quarantine/`` under a
        non-colliding name so the evidence survives for post-mortem
        while the fingerprint slot frees up for a rebuild.  Failures
        here are swallowed: quarantine is best-effort cleanup on an
        already-broken file and must never take down the serving path.
        """
        quarantine = self._root / ".quarantine"
        try:
            quarantine.mkdir(exist_ok=True)
        except OSError:
            return
        for victim in (path, self.checksum_path(path)):
            if not victim.exists():
                continue
            dest = quarantine / victim.name
            suffix = 0
            while dest.exists():
                suffix += 1
                dest = quarantine / f"{victim.name}.{suffix}"
            try:
                os.replace(victim, dest)
            except OSError:
                continue
        if self._obs.enabled:
            self._obs.metrics.counter("repro_store_quarantined_total").inc()
        with self._obs.tracer.span(
            "store.quarantine", path=str(path), reason=reason
        ):
            pass

    def warm_start(self, msm: MultiStepMechanism) -> StoreRecord | None:
        """Adopt stored node mechanisms into ``msm``'s cache, if present.

        Returns None on a store miss.  On a hit, the bundle's content
        checksum is verified first (when its sidecar exists), every
        stored matrix is guard-validated, the stored epsilon split /
        metric / prior are verified against the requesting mechanism,
        and the matrices enter ``msm.cache`` with ``source="store"``
        provenance (degraded nodes keep their original fallback
        provenance).

        A bundle that is *corrupt* — checksum mismatch, truncated or
        unreadable file, or a restored matrix failing the privacy
        guard — is quarantined to ``.quarantine/`` and reported as a
        miss, so the caller rebuilds instead of crashing the serving
        path.

        Raises
        ------
        MechanismError
            When a *readable* file exists under this fingerprint but
            stores a configuration that does not match the requesting
            mechanism (a stale or tampered entry) — it is never
            silently served, and never silently rebuilt over.
        """
        fingerprint = config_fingerprint(msm)
        path = self._root / f"msm-{fingerprint}.npz"
        if not path.exists():
            self._record("miss")
            return None
        sidecar = self.checksum_path(path)
        if sidecar.exists():
            try:
                expected = sidecar.read_text().strip()
                actual = _file_sha256(path)
            except OSError as exc:
                self._quarantine(path, f"unreadable: {exc}")
                self._record("miss")
                return None
            if expected != actual:
                self._quarantine(
                    path,
                    f"content checksum mismatch "
                    f"(expected {expected[:12]}…, got {actual[:12]}…)",
                )
                self._record("miss")
                return None
        try:
            restored = load_bundle(
                path,
                guard=True,
                expect_budgets=msm.budgets,
                expect_metric=msm.dq,
            )
        except MechanismError:
            # a readable bundle for a *different* configuration: stale,
            # not corrupt — refuse loudly rather than rebuild over it
            raise
        except Exception as exc:  # noqa: BLE001 - any corruption shape
            self._quarantine(path, f"{type(exc).__name__}: {exc}")
            self._record("miss")
            return None
        self._verify_geometry(path, msm, restored)
        adopted = 0
        skipped = 0
        for node_path, entry in restored.cache.snapshot().items():
            if node_path in msm.cache:
                skipped += 1
                continue
            msm.cache.put(
                node_path,
                entry.matrix,
                degraded=entry.degraded,
                source=entry.source if entry.degraded else "store",
                reason=entry.reason,
                level=entry.level,
                epsilon=entry.epsilon,
            )
            adopted += 1
        if skipped == 0:
            # only a cache populated purely from this bundle can be
            # expected to recompile to the sidecar's exact bits; a
            # partially pre-warmed mechanism holds its own solver bits
            # and must not condemn a good sidecar over the difference
            self._adopt_kernel(msm, fingerprint)
        self._record("hit", adopted)
        return StoreRecord(
            fingerprint=fingerprint,
            path=path,
            outcome="hit",
            adopted=adopted,
            size_bytes=path.stat().st_size,
        )

    def get_or_build(self, msm: MultiStepMechanism) -> StoreRecord:
        """Warm-start ``msm`` from the store, solving and persisting on a
        miss.

        On a hit the requesting mechanism performs *zero* LP solves; on
        a miss it precomputes every reachable node (through its own
        resilient/guarded solve path) and the result is persisted for
        the next process.  Single-flight per fingerprint within this
        process.
        """
        fingerprint = config_fingerprint(msm)
        with self._fingerprint_lock(fingerprint):
            record = self.warm_start(msm)
            if record is not None:
                return record
            msm.precompute()
            saved = self.save(msm)
            self._record("built")
            return StoreRecord(
                fingerprint=fingerprint,
                path=saved.path,
                outcome="built",
                adopted=0,
                size_bytes=saved.size_bytes,
            )

    def _verify_geometry(
        self,
        path: Path,
        msm: MultiStepMechanism,
        restored: MultiStepMechanism,
    ) -> None:
        """Stale-entry rejection beyond what load_bundle verifies: index
        shape and prior must hash identically to the requesting
        mechanism's."""
        want, got = msm.index, restored.index
        same_shape = (
            getattr(want, "granularity", None)
            == getattr(got, "granularity", None)
            and msm.height == restored.height
            and want.bounds == got.bounds
        )
        if not same_shape:
            raise MechanismError(
                f"store entry {path} was solved for a different index "
                f"shape; refusing to warm-start from it"
            )
        want_p, got_p = msm.prior.probabilities, restored.prior.probabilities
        if want_p.shape != got_p.shape or not np.allclose(
            want_p, got_p, rtol=1e-9, atol=1e-12
        ):
            raise MechanismError(
                f"store entry {path} was solved under a different prior; "
                f"refusing to warm-start from it"
            )

    def entries(self) -> list[Path]:
        """All bundle files currently in the store (kernel sidecars are
        companions of their bundle, not entries in their own right)."""
        return sorted(
            path
            for path in self._root.glob("msm-*.npz")
            if not path.name.endswith(".kernel.npz")
        )
