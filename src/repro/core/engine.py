"""The unified MSM walk engine.

Every sanitisation in the library — one point or fifty thousand — runs
through a single staged pipeline owned by :class:`WalkEngine`:

    locate  → resolve → sample  → descend → finalise
    (snap     (cache /   (vector-  (pick      (optional
    to a      resilient  ised CDF  reported   post-processing,
    child)    solver)    draw)     child)     e.g. optimal remap)

The scalar path is literally a batch of one:
:meth:`~repro.core.msm.MultiStepMechanism.sample_with_report` calls the
same engine code as
:meth:`~repro.core.msm.MultiStepMechanism.sanitize_batch`, so the two
are byte-identical under a shared seed — there is no second walk
implementation to drift out of sync.

*How* the engine runs a batch is a pluggable
:class:`ExecutionPolicy`: :class:`SerialExecution` walks the whole
batch in-process (the right default below ~10k points or on one core),
while :class:`ShardedExecution` partitions the batch by top-level index
node, walks each shard in a worker process with its own seeded RNG
stream, and merges the per-shard :class:`WalkResult` lists — traces,
degradation reports and newly solved cache entries included — back
into input order.

*What happens after* the walk is a pluggable :class:`PostProcessor`:
:class:`OptimalRemapPostProcessor` applies the optimal Bayesian remap
of Chatzikokolakis et al. ("Trading Optimality for Performance in
Location Privacy"), a deterministic output-only transformation that by
the data-processing inequality never weakens GeoInd and never
increases posterior-expected loss.
"""

from __future__ import annotations

import abc
import os
import pickle
import time
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.exceptions import (
    DegradedModeWarning,
    MechanismError,
    SolverError,
)
from repro.geo.metric import EUCLIDEAN, Metric
from repro.geo.point import Point, points_to_array
from repro.grid.index import IndexNode, SpatialIndex
from repro.mechanisms.exponential import exponential_matrix_from_locations
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.optimal import optimal_mechanism_from_locations
from repro.mechanisms.remap import optimal_remap_assignment
from repro.obs import (
    NOOP,
    SIZE_EDGES,
    MetricsRegistry,
    MetricsSnapshot,
    NoopTracer,
    Observability,
)
from repro.priors.base import GridPrior
from repro.privacy.guard import guard_mechanism
from repro.core.cache import CacheEntry, NodeMechanismCache
from repro.core.kernel import CompiledWalk, compile_walk
from repro.core.resilience import (
    DegradationReport,
    DegradedNode,
    ResilientSolver,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.msm import MultiStepMechanism


@dataclass(frozen=True)
class StepTrace:
    """One level of an MSM walk, for inspection and tests."""

    level: int
    node_path: tuple[int, ...]
    x_hat_index: int
    x_hat_random: bool
    reported_index: int
    degraded: bool = False
    mechanism: str = "opt"


@dataclass(frozen=True)
class WalkResult:
    """A sanitised point plus the full account of how it was produced.

    ``raw_point`` is set by post-processing stages (e.g. the optimal
    remap) to the point the walk itself produced, so provenance
    survives output transformations; it is None when no post-processor
    ran.
    """

    point: Point
    trace: tuple[StepTrace, ...]
    degradation: DegradationReport
    raw_point: Point | None = None


@dataclass(frozen=True)
class TelemetrySummary:
    """The per-batch account :meth:`WalkEngine.run_report` attaches.

    Built from the metrics-registry delta accrued by one batch, so its
    numbers are the observability layer's numbers — the telemetry-vs-
    truth tests cross-check them against the engine's own counters.
    """

    n_points: int
    wall_seconds: float
    lp_seconds: float
    lp_solves: int
    cache_hits: int
    cache_misses: int
    cache_builds: int
    degraded_steps: int
    degraded_walks: int
    snapshot: MetricsSnapshot

    @property
    def points_per_second(self) -> float:
        """Batch throughput (0.0 for an instantaneous empty batch)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.n_points / self.wall_seconds


@dataclass(frozen=True)
class WalkReport:
    """A batch's results plus (when observability is on) its telemetry."""

    results: tuple[WalkResult, ...]
    telemetry: TelemetrySummary | None = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i):
        return self.results[i]


# ----------------------------------------------------------------------
# post-processing stage
# ----------------------------------------------------------------------
class PostProcessor(abc.ABC):
    """The finalise stage: an output-only transformation of walk results.

    Implementations must be *deterministic functions of the output*
    (plus public knowledge such as the prior), so that by the
    data-processing inequality they cannot weaken the GeoInd guarantee
    the walk already established.
    """

    #: short label recorded in provenance / tables
    name: str = "post"

    @abc.abstractmethod
    def finalise(self, results: list[WalkResult]) -> list[WalkResult]:
        """Transform a batch of walk results (same length, same order)."""


class OptimalRemapPostProcessor(PostProcessor):
    """Optimal Bayesian remap over the walk's leaf outputs.

    On observing walk output ``z``, report instead the leaf centre
    minimising the posterior-expected quality loss under the modelling
    prior (Chatzikokolakis et al.; also the utility lever Bordenabe et
    al.'s optimal-mechanism construction exploits).  The remap table is
    built lazily on first use from the *exact* end-to-end walk matrix
    (:meth:`~repro.core.msm.MultiStepMechanism.to_matrix`), which
    restricts this post-processor to analysis-scale instances over a
    :class:`~repro.grid.hierarchy.HierarchicalGrid`; the per-query cost
    once built is one dictionary lookup.

    Being a deterministic function of the mechanism output alone, the
    remap never weakens GeoInd, and by construction it never increases
    the prior-expected loss of the end-to-end mechanism.
    """

    name = "optimal-remap"

    def __init__(self, msm: "MultiStepMechanism", dq: Metric | None = None):
        self._msm = msm
        self._dq = dq
        self._table: dict[int, Point] | None = None
        self._leaf_grid = None

    @property
    def table(self) -> dict[int, Point]:
        """Leaf cell index -> remapped output (built lazily, then cached).

        Keyed by the leaf grid's cell index rather than raw coordinates,
        so walk outputs (node-bounds centres) and matrix outputs (grid
        centres) cannot miss each other over float rounding."""
        if self._table is None:
            self._table = self._build_table()
        return self._table

    @property
    def leaf_grid(self):
        """The grid whose cells key :attr:`table` (built with it)."""
        self.table
        return self._leaf_grid

    def assignment(self) -> np.ndarray:
        """The remap assignment over the end-to-end matrix outputs."""
        matrix, prior = self._end_to_end()
        dq = self._dq if self._dq is not None else self._msm.dq
        return optimal_remap_assignment(matrix, prior, dq)

    def _end_to_end(self) -> tuple[MechanismMatrix, np.ndarray]:
        from repro.priors.aggregate import aggregate_mass

        msm = self._msm
        matrix = msm.to_matrix()
        depth = min(msm.height, msm.index.max_height())
        leaf_grid = msm.index.level_grid(depth)
        self._leaf_grid = leaf_grid
        mass = aggregate_mass(msm.prior, leaf_grid)
        total = mass.sum()
        if total <= 0:
            prior = np.full(leaf_grid.n_cells, 1.0 / leaf_grid.n_cells)
        else:
            prior = mass / total
        return matrix, prior

    def _build_table(self) -> dict[int, Point]:
        matrix, prior = self._end_to_end()
        dq = self._dq if self._dq is not None else self._msm.dq
        assignment = optimal_remap_assignment(matrix, prior, dq)
        outputs = matrix.outputs
        return {
            z_index: outputs[int(w)]
            for z_index, w in enumerate(assignment)
        }

    def finalise(self, results: list[WalkResult]) -> list[WalkResult]:
        table = self.table
        grid = self._leaf_grid
        out: list[WalkResult] = []
        for walk in results:
            if not grid.bounds.contains(walk.point):
                raise MechanismError(
                    f"walk output {walk.point} is outside the remap "
                    f"table's leaf grid; was the index changed after the "
                    f"table was built?"
                )
            remapped = table[grid.locate(walk.point).index]
            out.append(replace(walk, point=remapped, raw_point=walk.point))
        return out


# ----------------------------------------------------------------------
# execution policies
# ----------------------------------------------------------------------
class ExecutionPolicy(abc.ABC):
    """How a batch of walks is scheduled onto hardware.

    Policies only decide *where* :meth:`WalkEngine.walk` runs; the walk
    semantics (and hence the privacy guarantee) are identical under
    every policy.
    """

    #: short label recorded in benchmarks
    name: str = "policy"

    @abc.abstractmethod
    def execute(
        self,
        engine: "WalkEngine",
        points: list[Point],
        rng: np.random.Generator,
        trace: bool = True,
    ) -> list[WalkResult]:
        """Run the engine over ``points`` and return per-point results."""


class SerialExecution(ExecutionPolicy):
    """Walk the whole batch in-process (one vectorised pipeline)."""

    name = "serial"

    def execute(
        self,
        engine: "WalkEngine",
        points: list[Point],
        rng: np.random.Generator,
        trace: bool = True,
    ) -> list[WalkResult]:
        return engine.walk(points, rng, trace=trace)


def _run_shard(
    engine: "WalkEngine",
    points: list[Point],
    stream: "np.random.Generator | np.random.SeedSequence",
    trace: bool = True,
) -> tuple[
    list[WalkResult],
    dict[tuple[int, ...], CacheEntry],
    float,
    "MetricsSnapshot | None",
]:
    """Worker entry point: walk one shard with its own seeded stream.

    Returns the shard's results plus the worker cache content, LP
    wall-clock, and — when the parent runs with observability — the
    shard's own metrics snapshot, so the parent can adopt newly solved
    nodes and merge per-shard telemetry without losing attribution.
    Module-level so it pickles under every multiprocessing start method.

    The worker always rebinds a *fresh* registry: the pickled engine
    carries the parent's registry contents, and walking into those would
    double-count the parent's history once the snapshot merges back.
    Spans are not recorded in workers (they cannot cross the process
    boundary meaningfully); per-shard structure is visible through the
    ``shard.merge`` spans the parent emits instead.
    """
    parent_obs = engine.observability
    if parent_obs.enabled:
        engine.bind_observability(
            Observability(
                metrics=MetricsRegistry(), tracer=NoopTracer(), enabled=True
            )
        )
    rng = np.random.default_rng(stream)
    results = engine.walk(points, rng, postprocess=False, trace=trace)
    shard_metrics = (
        engine.observability.snapshot() if parent_obs.enabled else None
    )
    return results, engine.cache.snapshot(), engine.lp_seconds, shard_metrics


class ShardedExecution(ExecutionPolicy):
    """Partition a batch by top-level index node across worker processes.

    Each shard holds the points whose *actual* location falls in the
    same child of the root (points outside the domain form one extra
    shard), walks in its own process with an independent RNG stream
    spawned from the caller's generator
    (:meth:`numpy.random.Generator.spawn`), and returns full per-point
    provenance.  The parent merges shard results back into input order
    and adopts every node mechanism the workers solved, so a sharded
    run warms the parent cache exactly like a serial one.

    Outputs are *distribution-identical* to serial execution but not
    bit-identical under a shared seed (shards consume independent
    streams); the equivalence is verified statistically in
    ``tests/test_engine.py``.

    The policy degrades gracefully: batches smaller than
    ``min_batch_size``, machines without a usable worker pool, single
    shards, or engines that cannot be pickled all fall back to the
    serial pipeline — never to an error.

    Parameters
    ----------
    max_workers:
        Worker-process cap; defaults to the CPU count visible to this
        process.  Parallel speedup obviously requires > 1 core.
    min_batch_size:
        Batches below this size skip the pool (fork + pickle overhead
        would dominate); the default keeps single-point calls — the
        scalar path — on the serial fast path.
    mp_start_method:
        ``multiprocessing`` start method; ``fork`` (where available)
        shares the parent's warm cache with workers for free.
    """

    name = "sharded"

    def __init__(
        self,
        max_workers: int | None = None,
        min_batch_size: int = 2048,
        mp_start_method: str | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise MechanismError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._max_workers = max_workers
        self._min_batch_size = min_batch_size
        self._mp_start_method = mp_start_method

    @property
    def max_workers(self) -> int:
        """The effective worker cap on this machine."""
        if self._max_workers is not None:
            return self._max_workers
        return os.cpu_count() or 1

    def shard_keys(
        self, engine: "WalkEngine", coords: np.ndarray
    ) -> np.ndarray:
        """Top-level child index per point (-1 for out-of-domain)."""
        index = engine.index
        return index.locate_child_indices(index.root, coords)

    def partition(
        self, engine: "WalkEngine", points: list[Point]
    ) -> list[list[int]]:
        """Point indices grouped by shard key, in deterministic order."""
        coords = points_to_array(points)
        keys = self.shard_keys(engine, coords)
        shards: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            shards.setdefault(int(key), []).append(i)
        return [shards[key] for key in sorted(shards)]

    def _serial_fallback(
        self,
        engine: "WalkEngine",
        points: list[Point],
        rng: np.random.Generator,
        reason: str,
        trace: bool = True,
    ) -> list[WalkResult]:
        """Run the batch serially, recording why sharding stood down.

        The fallback runs through the engine's own instrumented
        :meth:`WalkEngine.walk`, so per-level LP timing attribution is
        identical to a sharded run's merged worker registries — the
        fallback never collapses attribution into an unlabeled bucket.
        """
        obs = engine.observability
        if obs.enabled:
            obs.metrics.counter(
                "repro_exec_serial_fallback_total", reason=reason
            ).inc()
        return engine.walk(points, rng, trace=trace)

    def execute(
        self,
        engine: "WalkEngine",
        points: list[Point],
        rng: np.random.Generator,
        trace: bool = True,
    ) -> list[WalkResult]:
        shards = self.partition(engine, points)
        workers = min(self.max_workers, len(shards))
        if len(points) < self._min_batch_size:
            return self._serial_fallback(
                engine, points, rng, "small_batch", trace=trace
            )
        if len(shards) < 2:
            return self._serial_fallback(
                engine, points, rng, "single_shard", trace=trace
            )
        if workers < 2:
            return self._serial_fallback(
                engine, points, rng, "few_workers", trace=trace
            )
        worker_engine = engine.worker_copy()
        try:
            payload = pickle.dumps(worker_engine)
        except Exception as exc:  # unpicklable solver/cache injections
            warnings.warn(
                f"sharded execution unavailable (engine not picklable: "
                f"{exc}); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._serial_fallback(
                engine, points, rng, "unpicklable", trace=trace
            )
        del payload
        seeds = rng.spawn(len(shards))
        results: list[WalkResult | None] = [None] * len(points)
        import concurrent.futures
        import multiprocessing

        method = self._mp_start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        context = (
            multiprocessing.get_context(method)
            if method is not None
            else multiprocessing.get_context()
        )
        obs = engine.observability
        if obs.enabled:
            obs.metrics.counter("repro_shards_total").inc(len(shards))
            shard_sizes = obs.metrics.histogram(
                "repro_shard_points", edges=SIZE_EDGES
            )
            for shard in shards:
                shard_sizes.observe(len(shard))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                pool.submit(
                    _run_shard,
                    worker_engine,
                    [points[i] for i in shard],
                    seed,
                    trace,
                )
                for shard, seed in zip(shards, seeds)
            ]
            for shard_id, (shard, future) in enumerate(zip(shards, futures)):
                shard_results, entries, lp_seconds, shard_metrics = (
                    future.result()
                )
                for i, walk in zip(shard, shard_results):
                    results[i] = walk
                merge_start = time.perf_counter()
                with obs.tracer.span(
                    "shard.merge", shard=shard_id, n=len(shard)
                ):
                    engine.cache.merge(entries)
                    engine.add_lp_seconds(lp_seconds)
                    if obs.enabled and shard_metrics is not None:
                        obs.metrics.merge(shard_metrics)
                if obs.enabled:
                    obs.metrics.counter(
                        "repro_shard_lp_seconds_total", shard=shard_id
                    ).inc(lp_seconds)
                    obs.metrics.counter(
                        "repro_shard_merge_seconds_total"
                    ).inc(time.perf_counter() - merge_start)
        return engine.finalise([w for w in results if w is not None])


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class WalkEngine:
    """One staged, vectorised implementation of the MSM level walk.

    The engine owns the walk configuration (index, per-level budgets,
    prior, metrics, resilient solver, guard/degrade policy, node cache)
    and exposes the stages — :meth:`locate`, :meth:`resolve_many`,
    :meth:`sample`, :meth:`finalise` — plus the :meth:`walk` loop that
    strings them together.  :class:`~repro.core.msm.MultiStepMechanism`
    is a thin facade over an engine; execution policies schedule it;
    post-processors transform its output.
    """

    def __init__(
        self,
        index: SpatialIndex,
        budgets: Sequence[float],
        prior: GridPrior,
        dq: Metric = EUCLIDEAN,
        dx: Metric = EUCLIDEAN,
        backend: str = "highs-ds",
        spanner_dilation: float | None = None,
        solver: ResilientSolver | None = None,
        degrade: bool = True,
        guard: bool = True,
        cache: NodeMechanismCache | None = None,
        executor: ExecutionPolicy | None = None,
        postprocessor: PostProcessor | None = None,
        obs: Observability | None = None,
        kernel: str = "auto",
        kernel_min_batch: int = 1024,
    ):
        if kernel not in ("auto", "always", "never"):
            raise MechanismError(
                f"kernel must be 'auto', 'always' or 'never', got {kernel!r}"
            )
        self._index = index
        self._budgets = tuple(float(b) for b in budgets)
        self._prior = prior
        self._dq = dq
        self._dx = dx
        self._backend = backend
        self._spanner_dilation = spanner_dilation
        self._solver = solver if solver is not None else ResilientSolver()
        self._degrade = degrade
        self._guard = guard
        self._cache = cache if cache is not None else NodeMechanismCache()
        self._executor = executor if executor is not None else SerialExecution()
        self._postprocessor = postprocessor
        self._lp_seconds = 0.0
        self._kernel = kernel
        self.kernel_min_batch = int(kernel_min_batch)
        self._compiled: CompiledWalk | None = None
        self._compile_failed_version: int | None = None
        self.bind_observability(obs if obs is not None else NOOP)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def index(self) -> SpatialIndex:
        return self._index

    @property
    def budgets(self) -> tuple[float, ...]:
        return self._budgets

    @property
    def prior(self) -> GridPrior:
        return self._prior

    @property
    def dq(self) -> Metric:
        return self._dq

    @property
    def dx(self) -> Metric:
        return self._dx

    @property
    def cache(self) -> NodeMechanismCache:
        return self._cache

    @property
    def spanner_dilation(self) -> float | None:
        """The Δ-spanner dilation the cold LP builds run with (None = exact)."""
        return self._spanner_dilation

    @property
    def kernel(self) -> str:
        """Kernel dispatch policy: ``"auto"``, ``"always"`` or ``"never"``."""
        return self._kernel

    @kernel.setter
    def kernel(self, mode: str) -> None:
        if mode not in ("auto", "always", "never"):
            raise MechanismError(
                f"kernel must be 'auto', 'always' or 'never', got {mode!r}"
            )
        self._kernel = mode

    @property
    def compiled(self) -> CompiledWalk | None:
        """The current compiled-walk snapshot (None = not compiled)."""
        return self._compiled

    @property
    def solver(self) -> ResilientSolver:
        return self._solver

    @property
    def observability(self) -> Observability:
        """The bound observability handle (the shared no-op by default)."""
        return self._obs

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability handle and propagate it downward.

        When ``obs`` is enabled the cache and resilient solver are
        rebound too (so their metrics land in the same registry) and the
        configured per-level budgets are published as gauges.  The
        disabled default deliberately does *not* touch the cache or
        solver — they may carry their own binding, and the hot path must
        stay untouched.
        """
        self._obs = obs
        if obs.enabled:
            self._cache.bind_observability(obs)
            self._solver.bind_observability(obs)
            for level, eps in enumerate(self._budgets, start=1):
                obs.metrics.gauge(
                    "repro_budget_level_epsilon", level=level
                ).set(eps)

    @property
    def lp_seconds(self) -> float:
        """Cumulative wall-clock spent solving per-node LPs."""
        return self._lp_seconds

    def add_lp_seconds(self, seconds: float) -> None:
        """Fold in LP wall-clock accrued elsewhere (worker shards)."""
        self._lp_seconds += float(seconds)

    @property
    def executor(self) -> ExecutionPolicy:
        return self._executor

    @executor.setter
    def executor(self, policy: ExecutionPolicy) -> None:
        self._executor = policy

    @property
    def postprocessor(self) -> PostProcessor | None:
        return self._postprocessor

    @postprocessor.setter
    def postprocessor(self, post: PostProcessor | None) -> None:
        self._postprocessor = post

    def worker_copy(self) -> "WalkEngine":
        """A copy suitable for a worker process: serial, no post stage.

        Workers share the parent's (forked or pickled) cache content
        but must not recurse into a pool of their own, and
        post-processing runs exactly once, in the parent, after the
        merge.
        """
        return WalkEngine(
            self._index,
            self._budgets,
            self._prior,
            dq=self._dq,
            dx=self._dx,
            backend=self._backend,
            spanner_dilation=self._spanner_dilation,
            solver=self._solver,
            degrade=self._degrade,
            guard=self._guard,
            cache=self._cache,
            executor=SerialExecution(),
            postprocessor=None,
            obs=self._obs,
            kernel=self._kernel,
            kernel_min_batch=self.kernel_min_batch,
        )

    # ------------------------------------------------------------------
    # the compiled kernel
    # ------------------------------------------------------------------
    def compile(self, build: bool = True) -> CompiledWalk | None:
        """(Re)compile the walk kernel from the warmed tree.

        ``build=True`` solves missing nodes through the normal resolve
        path first (like a precompute); ``build=False`` compiles only if
        every reachable node is already cached.  Returns the snapshot,
        or None when the index/cache cannot be compiled — the engine
        then stays on the staged path.  Failed compiles are remembered
        per cache version so ``"auto"`` dispatch does not retry a
        hopeless compile on every batch.
        """
        compiled = compile_walk(self, build_missing=build)
        if compiled is None:
            self._compiled = None
            self._compile_failed_version = self._cache.version
        else:
            self._compiled = compiled
            self._compile_failed_version = None
        return self._compiled

    def adopt_compiled(self, compiled: CompiledWalk) -> None:
        """Adopt an externally built snapshot (e.g. a store sidecar)."""
        self._compiled = compiled
        self._compile_failed_version = None

    def _kernel_ready(self, n_points: int) -> bool:
        """Decide staged vs compiled for this batch (may compile)."""
        mode = self._kernel
        if mode == "never":
            return False
        if mode == "auto" and n_points < self.kernel_min_batch:
            return False
        version = self._cache.version
        if (
            self._compiled is not None
            and self._compiled.cache_version == version
        ):
            return True
        # Stale or absent snapshot: recompile.  "auto" only harvests a
        # warm cache; "always" builds whatever is missing.
        if mode == "auto" and self._compile_failed_version == version:
            return False
        return self.compile(build=(mode == "always")) is not None

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[Point],
        rng: np.random.Generator,
        trace: bool = True,
    ) -> list[WalkResult]:
        """Sanitise ``points`` under the configured execution policy.

        ``trace=False`` skips per-point :class:`StepTrace`
        materialisation (results carry an empty trace tuple); sampled
        points, degradation reports and telemetry are unaffected.
        """
        points = list(points)
        if not points:
            return []
        if not self._index.children(self._index.root):
            raise MechanismError(
                "index root has no children; nothing to report"
            )
        if not self._obs.enabled:
            return self._executor.execute(self, points, rng, trace=trace)
        metrics = self._obs.metrics
        start = time.perf_counter()
        results = self._executor.execute(self, points, rng, trace=trace)
        elapsed = time.perf_counter() - start
        metrics.counter("repro_walk_batches_total").inc()
        metrics.counter("repro_walk_points_total").inc(len(points))
        metrics.histogram("repro_sanitize_seconds").observe(elapsed)
        return results

    def run_report(
        self,
        points: Sequence[Point],
        rng: np.random.Generator,
        trace: bool = True,
    ) -> WalkReport:
        """Like :meth:`run`, but wrap the results in a :class:`WalkReport`.

        With observability enabled the report carries a
        :class:`TelemetrySummary` built from the registry delta this
        batch accrued; disabled, ``telemetry`` is None.
        """
        if not self._obs.enabled:
            return WalkReport(results=tuple(self.run(points, rng, trace=trace)))
        before = self._obs.snapshot()
        start = time.perf_counter()
        results = self.run(points, rng, trace=trace)
        wall = time.perf_counter() - start
        delta = self._obs.snapshot().since(before)
        degraded_walks = sum(
            1 for w in results if not w.degradation.clean
        )
        telemetry = TelemetrySummary(
            n_points=len(results),
            wall_seconds=wall,
            lp_seconds=delta.counter_total("repro_lp_solve_seconds_total"),
            lp_solves=int(delta.counter_total("repro_lp_solves_total")),
            cache_hits=int(delta.counter_total("repro_cache_hits_total")),
            cache_misses=int(delta.counter_total("repro_cache_misses_total")),
            cache_builds=int(delta.counter_total("repro_cache_builds_total")),
            degraded_steps=int(
                delta.counter_total("repro_walk_degraded_steps_total")
            ),
            degraded_walks=degraded_walks,
            snapshot=delta,
        )
        return WalkReport(results=tuple(results), telemetry=telemetry)

    # ------------------------------------------------------------------
    # the staged pipeline
    # ------------------------------------------------------------------
    def walk(
        self,
        points: Sequence[Point],
        rng: np.random.Generator,
        postprocess: bool = True,
        trace: bool = True,
    ) -> list[WalkResult]:
        """The level walk: staged or compiled, one semantics, any batch.

        Semantically each point gets an independent Algorithm-1 walk
        with a per-point
        :class:`~repro.core.resilience.DegradationReport` (and, with
        ``trace=True``, full :class:`StepTrace` provenance).  Both code
        paths consume the RNG stream identically per level — one
        uniform draw for the drifted points (ascending batch order,
        skipped when none drifted), one for the reported-child
        inversion — so which path ran is unobservable in the output: the
        staged path doubles as the kernel's differential-testing
        oracle.  A batch of one *is* the scalar path.
        """
        points = list(points)
        if not points:
            return []
        if not self._index.children(self._index.root):
            raise MechanismError(
                "index root has no children; nothing to report"
            )
        coords = points_to_array(points)
        if self._kernel_ready(len(points)):
            return self._walk_kernel(coords, rng, postprocess, trace)
        return self._walk_staged(coords, rng, postprocess, trace)

    def _walk_staged(
        self,
        coords: np.ndarray,
        rng: np.random.Generator,
        postprocess: bool,
        trace: bool,
    ) -> list[WalkResult]:
        """The object-world walk: per-node groups, cache, resilience.

        The level step is organised as flat per-level passes over the
        active points (locate everything, one drift draw, one uniform
        draw, per-group row sampling with the pre-drawn uniforms), with
        per-group Python loops only for descend/trace bookkeeping —
        exactly the RNG schedule the compiled kernel replays.
        """
        n = coords.shape[0]
        obs = self._obs
        tracer = obs.tracer
        nodes: list[IndexNode] = [self._index.root] * n
        traces: list[list[StepTrace]] | None = (
            [[] for _ in range(n)] if trace else None
        )
        substitutions: list[list[DegradedNode]] = [[] for _ in range(n)]
        active = list(range(n))
        with tracer.span("walk", n=n, path="staged"):
            for level, eps in enumerate(self._budgets, start=1):
                if not active:
                    break
                with tracer.span("level", level=level, epsilon=eps):
                    groups: dict[tuple[int, ...], list[int]] = {}
                    for i in active:
                        groups.setdefault(nodes[i].path, []).append(i)
                    group_nodes = {
                        path: nodes[idxs[0]] for path, idxs in groups.items()
                    }
                    children_of = {
                        path: self._index.children(node)
                        for path, node in group_nodes.items()
                    }
                    entries = self.resolve_many(
                        level, group_nodes, children_of
                    )
                    # Points whose node bottomed out early (adaptive
                    # indexes) drop from the walk; the rest proceed in
                    # ascending batch order, which fixes the RNG layout.
                    proc = [
                        i for i in active if children_of[nodes[i].path]
                    ]
                    if not proc:
                        active = proc
                        continue
                    pos_of = {i: p for p, i in enumerate(proc)}
                    n_proc = len(proc)
                    x_hat_lvl = np.full(n_proc, -1, dtype=np.int64)
                    fanout_lvl = np.zeros(n_proc, dtype=np.int64)
                    with tracer.span("locate", n=n_proc) as sp:
                        for path, idxs in groups.items():
                            children = children_of[path]
                            if not children:
                                continue
                            raw = self._index.locate_child_indices(
                                group_nodes[path], coords[idxs]
                            )
                            pos = [pos_of[i] for i in idxs]
                            x_hat_lvl[pos] = raw
                            fanout_lvl[pos] = len(children)
                        drifted_lvl = x_hat_lvl < 0
                        n_drifted = int(drifted_lvl.sum())
                        if n_drifted:
                            r = rng.random(n_drifted)
                            fan = fanout_lvl[drifted_lvl]
                            x_hat_lvl[drifted_lvl] = np.minimum(
                                (r * fan).astype(np.int64), fan - 1
                            )
                        if sp is not None:
                            sp.attributes["drifted"] = n_drifted
                    with tracer.span("sample", n=n_proc):
                        u = rng.random(n_proc)
                        reported_lvl = np.empty(n_proc, dtype=np.int64)
                        for path, idxs in groups.items():
                            if not children_of[path]:
                                continue
                            pos = [pos_of[i] for i in idxs]
                            reported_lvl[pos] = entries[path].matrix.sample_rows(
                                x_hat_lvl[pos], u=u[pos]
                            )
                    with tracer.span("descend", n=n_proc):
                        for path, idxs in groups.items():
                            children = children_of[path]
                            if not children:
                                continue
                            entry = entries[path]
                            degraded_node = (
                                DegradedNode(
                                    node_path=path,
                                    level=level,
                                    epsilon=eps,
                                    fallback=entry.source,
                                    reason=entry.reason or "",
                                )
                                if entry.degraded
                                else None
                            )
                            for i in idxs:
                                pos = pos_of[i]
                                if traces is not None:
                                    traces[i].append(
                                        StepTrace(
                                            level=level,
                                            node_path=path,
                                            x_hat_index=int(x_hat_lvl[pos]),
                                            x_hat_random=bool(
                                                drifted_lvl[pos]
                                            ),
                                            reported_index=int(
                                                reported_lvl[pos]
                                            ),
                                            degraded=entry.degraded,
                                            mechanism=entry.source,
                                        )
                                    )
                                if degraded_node is not None:
                                    substitutions[i].append(degraded_node)
                                nodes[i] = children[reported_lvl[pos]]
                            if obs.enabled:
                                pos = [pos_of[i] for i in idxs]
                                self._record_level_group(
                                    level,
                                    entry,
                                    x_hat_lvl[pos],
                                    drifted_lvl[pos],
                                    reported_lvl[pos],
                                )
                    active = proc
            results = [
                WalkResult(
                    point=nodes[i].center,
                    trace=tuple(traces[i]) if traces is not None else (),
                    degradation=DegradationReport(tuple(substitutions[i])),
                )
                for i in range(n)
            ]
            if obs.enabled:
                obs.metrics.counter("repro_walk_degraded_walks_total").inc(
                    sum(1 for subs in substitutions if subs)
                )
            return self.finalise(results) if postprocess else results

    def _walk_kernel(
        self,
        coords: np.ndarray,
        rng: np.random.Generator,
        postprocess: bool,
        trace: bool,
    ) -> list[WalkResult]:
        """The array-world walk: flat per-level passes, lazy provenance.

        The fused loop in :meth:`CompiledWalk.walk_arrays` touches no
        Python objects; traces and degradation reports are materialised
        afterwards from the per-level arrays — only when requested
        (``trace=True``) or for the (usually empty) degraded subset.
        Telemetry counters are computed exactly from the same arrays.
        """
        compiled = self._compiled
        assert compiled is not None
        n = coords.shape[0]
        obs = self._obs
        tracer = obs.tracer
        with tracer.span("walk", n=n, path="kernel"):
            final_ids, levels = compiled.walk_arrays(
                coords, rng, tracer=tracer if obs.enabled else None
            )
            degraded_mask = np.zeros(n, dtype=bool)
            for ld in levels:
                node_degraded = compiled.degraded[ld.ids]
                if node_degraded.any():
                    degraded_mask[ld.active[node_degraded]] = True
                if obs.enabled:
                    self._record_level_arrays(ld, compiled)
            traces: list[list[StepTrace]] | None = (
                [[] for _ in range(n)] if trace else None
            )
            substitutions: dict[int, list[DegradedNode]] = {}
            if trace or degraded_mask.any():
                for ld in levels:
                    eps = compiled.budgets[ld.level - 1]
                    if traces is not None:
                        for pos in range(ld.active.size):
                            i = int(ld.active[pos])
                            node_id = int(ld.ids[pos])
                            traces[i].append(
                                StepTrace(
                                    level=ld.level,
                                    node_path=compiled.paths[node_id],
                                    x_hat_index=int(ld.x_hat[pos]),
                                    x_hat_random=bool(ld.drifted[pos]),
                                    reported_index=int(ld.reported[pos]),
                                    degraded=bool(
                                        compiled.degraded[node_id]
                                    ),
                                    mechanism=compiled.source[node_id],
                                )
                            )
                    for pos in np.flatnonzero(compiled.degraded[ld.ids]):
                        i = int(ld.active[pos])
                        node_id = int(ld.ids[pos])
                        substitutions.setdefault(i, []).append(
                            DegradedNode(
                                node_path=compiled.paths[node_id],
                                level=ld.level,
                                epsilon=eps,
                                fallback=compiled.source[node_id],
                                reason=compiled.reason[node_id] or "",
                            )
                        )
            clean_report = DegradationReport(())
            out_x = compiled.center_x[final_ids].tolist()
            out_y = compiled.center_y[final_ids].tolist()
            results = [
                WalkResult(
                    point=Point(out_x[i], out_y[i]),
                    trace=tuple(traces[i]) if traces is not None else (),
                    degradation=(
                        DegradationReport(tuple(substitutions[i]))
                        if i in substitutions
                        else clean_report
                    ),
                )
                for i in range(n)
            ]
            if obs.enabled:
                obs.metrics.counter("repro_walk_degraded_walks_total").inc(
                    int(degraded_mask.sum())
                )
            return self.finalise(results) if postprocess else results

    def _record_level_arrays(self, ld, compiled: CompiledWalk) -> None:
        """Exact per-level metrics from the kernel's arrays.

        Mirrors :meth:`_record_level_group` summed over a level's
        groups: same counters, same labels, same totals.
        """
        metrics = self._obs.metrics
        n_steps = int(ld.active.size)
        n_drifted = int(ld.drifted.sum())
        on_track = int((~ld.drifted & (ld.reported == ld.x_hat)).sum())
        metrics.counter("repro_walk_steps_total", level=ld.level).inc(n_steps)
        if n_drifted:
            metrics.counter(
                "repro_walk_drifted_total", level=ld.level
            ).inc(n_drifted)
        metrics.counter(
            "repro_walk_on_track_total", level=ld.level
        ).inc(on_track)
        degraded_steps = int(compiled.degraded[ld.ids].sum())
        if degraded_steps:
            metrics.counter(
                "repro_walk_degraded_steps_total", level=ld.level
            ).inc(degraded_steps)

    def _record_level_group(
        self,
        level: int,
        entry: CacheEntry,
        x_hat: np.ndarray,
        drifted: np.ndarray,
        reported: np.ndarray,
    ) -> None:
        """Per-group step metrics (only called when observability is on).

        ``on_track`` counts non-drifted steps whose reported child equals
        the true child — the numerator of the achieved same-cell
        probability Pr[x|x] that the budget allocation (Section 5 of the
        paper) promises to keep >= rho at every level:
        ``on_track / (steps - drifted)``.
        """
        metrics = self._obs.metrics
        n_steps = len(x_hat)
        n_drifted = int(drifted.sum())
        on_track = int((~drifted & (reported == x_hat)).sum())
        metrics.counter("repro_walk_steps_total", level=level).inc(n_steps)
        if n_drifted:
            metrics.counter(
                "repro_walk_drifted_total", level=level
            ).inc(n_drifted)
        metrics.counter(
            "repro_walk_on_track_total", level=level
        ).inc(on_track)
        if entry.degraded:
            metrics.counter(
                "repro_walk_degraded_steps_total", level=level
            ).inc(n_steps)

    # -- stage: locate --------------------------------------------------
    def locate(
        self,
        node: IndexNode,
        children: Sequence[IndexNode],
        coords: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm 1 lines 8-10, vectorised: snap each point to the
        child containing it, or draw a uniform child where the walk has
        drifted outside the node.  Returns ``(x_hat, drifted)``.

        The drift draw is ``floor(U * fanout)`` over one
        ``rng.random`` block (clamped against the ``U * fanout ==
        fanout`` float edge case) — the same schedule the walk paths
        use, so this public stage agrees with them draw-for-draw.
        """
        x_hat = self._index.locate_child_indices(node, coords)
        drifted = x_hat < 0
        n_drifted = int(drifted.sum())
        if n_drifted:
            fanout = len(children)
            r = rng.random(n_drifted)
            x_hat[drifted] = np.minimum(
                (r * fanout).astype(np.int64), fanout - 1
            )
        return x_hat, drifted

    # -- stage: resolve -------------------------------------------------
    def resolve(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> CacheEntry:
        """The validated step mechanism for one node (cache or solve)."""
        return self.resolve_many(
            level, {node.path: node}, {node.path: list(children)}
        )[node.path]

    def resolve_many(
        self,
        level: int,
        group_nodes: dict[tuple[int, ...], IndexNode],
        children_of: dict[tuple[int, ...], list[IndexNode]],
    ) -> dict[tuple[int, ...], CacheEntry]:
        """Bulk get-or-build: each distinct internal node of a level is
        solved exactly once (through the resilient chain), guarded, and
        cached before any point samples from it."""
        paths = [path for path, kids in children_of.items() if kids]
        with self._obs.tracer.span("resolve", nodes=len(paths)):
            return self._cache.get_or_build_many(
                paths,
                lambda path: self.solve_step(
                    group_nodes[path], level, children_of[path]
                ),
            )

    def solve_step(
        self,
        node: IndexNode,
        level: int,
        children: Sequence[IndexNode],
    ) -> tuple[MechanismMatrix, dict]:
        """Solve (or degrade to) one node's step mechanism and guard it.

        Fail-closed contract: the returned matrix has either been
        solved optimally through the resilient fallback chain or — when
        that chain is exhausted and degradation is enabled — replaced
        by the closed-form exponential mechanism at the same per-level
        epsilon.  Either way the privacy guard validates it before it
        may be cached or sampled from; a guard violation raises instead
        of ever letting the walk sample from a bad matrix.  Returns the
        matrix with the provenance dict
        :meth:`~repro.core.cache.NodeMechanismCache.put` expects.
        """
        locations = [child.center for child in children]
        sub_prior = self.child_prior(children)
        eps = self._budgets[level - 1]
        start = time.perf_counter()
        degraded_reason: str | None = None
        try:
            try:
                result = optimal_mechanism_from_locations(
                    eps,
                    locations,
                    sub_prior,
                    self._dq,
                    dx=self._dx,
                    backend=self._backend,
                    spanner_dilation=self._spanner_dilation,
                    solver=self._solver,
                )
                matrix = result.matrix
            except SolverError as exc:
                if not self._degrade:
                    raise
                degraded_reason = f"{type(exc).__name__}: {exc}"
                matrix = exponential_matrix_from_locations(
                    locations, eps, dx=self._dx
                )
                warnings.warn(
                    DegradedModeWarning(
                        f"level-{level} OPT solve failed at node "
                        f"{node.path}; serving the exponential fallback "
                        f"at eps={eps:.4g} (utility is sub-optimal, "
                        f"privacy unchanged)"
                    ),
                    stacklevel=2,
                )
        finally:
            elapsed = time.perf_counter() - start
            self._lp_seconds += elapsed
            if self._obs.enabled:
                metrics = self._obs.metrics
                metrics.counter(
                    "repro_lp_solve_seconds_total", level=level
                ).inc(elapsed)
                metrics.counter(
                    "repro_lp_solves_total", level=level
                ).inc()
        if self._guard:
            guard_mechanism(matrix, eps, dx=self._dx)
        return (
            matrix,
            dict(
                degraded=degraded_reason is not None,
                source="exponential" if degraded_reason is not None else "opt",
                reason=degraded_reason,
                level=level,
                epsilon=eps,
            ),
        )

    def child_prior(self, children: Sequence[IndexNode]) -> np.ndarray:
        """Global prior mass restricted to ``children`` and renormalised.

        Region membership is delegated to the index's
        :meth:`~repro.grid.index.SpatialIndex.contains_mask`, so
        non-box partitions (the graph index) fold the prior onto their
        true regions rather than onto bounding-box envelopes.
        """
        centers = self._prior.grid.centers_array()
        probs = self._prior.probabilities
        masses = np.zeros(len(children))
        for j, child in enumerate(children):
            inside = self._index.contains_mask(child, centers)
            masses[j] = probs[inside].sum()
        total = masses.sum()
        if total <= 0:
            return np.full(len(children), 1.0 / len(children))
        return masses / total

    # -- stage: sample --------------------------------------------------
    def sample(
        self,
        entry: CacheEntry,
        x_hat: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw one reported child per point from the guarded step matrix
        (vectorised CDF inversion over the gathered rows)."""
        return entry.matrix.sample_rows(x_hat, rng)

    # -- stage: finalise ------------------------------------------------
    def finalise(self, results: list[WalkResult]) -> list[WalkResult]:
        """Apply the post-processing stage, when one is configured."""
        post = self._postprocessor
        with self._obs.tracer.span(
            "finalise",
            n=len(results),
            post="none" if post is None else post.name,
        ):
            if post is None or not results:
                return results
            out = post.finalise(list(results))
            if len(out) != len(results):
                raise MechanismError(
                    f"post-processor {post.name!r} changed the "
                    f"batch size: {len(results)} walks in, {len(out)} out"
                )
            return out


#: Builder signature the cache's bulk warm-up expects.
StepBuilder = Callable[[tuple[int, ...]], tuple[MechanismMatrix, dict]]
