"""Per-node mechanism cache for the multi-step mechanism.

The LP an MSM step solves depends only on the index node (its children's
geometry and restricted prior) and the level budget — not on the user
location.  Caching solved matrices per node therefore makes repeat
queries O(h) row samples, and precomputing the whole reachable tree is
exactly the paper's offline component: "download in advance (offline) a
set of maps annotated with additional pre-computed information"
(Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mechanisms.matrix import MechanismMatrix


@dataclass
class NodeMechanismCache:
    """Maps an index-node path to its solved step mechanism.

    A plain dict with hit/miss accounting; the node path is a complete
    key because MSM fixes the per-level budget, metric and prior at
    construction time.
    """

    _store: dict[tuple[int, ...], MechanismMatrix] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, path: tuple[int, ...]) -> MechanismMatrix | None:
        """Look up the solved matrix for a node, counting hit/miss."""
        matrix = self._store.get(path)
        if matrix is None:
            self.misses += 1
        else:
            self.hits += 1
        return matrix

    def put(self, path: tuple[int, ...], matrix: MechanismMatrix) -> None:
        """Store a solved matrix for a node."""
        self._store[path] = matrix

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, path: tuple[int, ...]) -> bool:
        return path in self._store

    def clear(self) -> None:
        """Drop all cached matrices and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def size_bytes(self) -> int:
        """Approximate memory footprint of the cached matrices."""
        return sum(m.k.nbytes for m in self._store.values())
