"""Per-node mechanism cache for the multi-step mechanism.

The LP an MSM step solves depends only on the index node (its children's
geometry and restricted prior) and the level budget — not on the user
location.  Caching solved matrices per node therefore makes repeat
queries O(h) row samples, and precomputing the whole reachable tree is
exactly the paper's offline component: "download in advance (offline) a
set of maps annotated with additional pre-computed information"
(Section 3.1).

Since the resilience layer landed, the cache stores a
:class:`CacheEntry` per node rather than a bare matrix: the entry keeps
the provenance every degradation report needs — whether the node runs
on its LP optimum or on the substituted closed-form fallback, at which
level and epsilon, and why.

Since the serving layer landed, the cache is also a *resource*: it is
memory-bounded (least-recently-used eviction against a configurable
byte budget, so a long-lived server over a deep index cannot grow
without bound) and thread-safe (a server's request threads and warm-up
paths may race on it; builds are single-flight per node so a race
solves each LP exactly once).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.mechanisms.matrix import MechanismMatrix
from repro.obs import NOOP, Observability


@dataclass(frozen=True)
class CacheEntry:
    """One node's mechanism plus the provenance the resilience layer needs.

    Attributes
    ----------
    matrix:
        The (guard-validated) step mechanism.
    degraded:
        True when the LP solve failed and ``matrix`` is the closed-form
        fallback rather than the optimum.
    source:
        Where the matrix came from: ``"opt"``, ``"exponential"`` (the
        degradation fallback), ``"bundle"`` (restored from disk) or
        ``"store"`` (warm-started from a persistent mechanism store).
    reason:
        The failure that triggered degradation, when ``degraded``.
    level:
        The walk level this node's mechanism serves (1-based).
    epsilon:
        The per-level budget the matrix was validated against.
    """

    matrix: MechanismMatrix
    degraded: bool = False
    source: str = "opt"
    reason: str | None = None
    level: int | None = None
    epsilon: float | None = None

    @property
    def size_bytes(self) -> int:
        """Resident size this entry charges against the cache budget.

        The matrix payload dominates (the location lists are shared
        ``Point`` objects), so the accounting uses the dense kernel's
        byte count.
        """
        return int(self.matrix.k.nbytes)


class NodeMechanismCache:
    """Maps an index-node path to its solved step mechanism.

    The node path is a complete key because MSM fixes the per-level
    budget, metric and prior at construction time.

    Parameters
    ----------
    max_bytes:
        Optional resident-size budget.  When set, inserting an entry
        that pushes :attr:`resident_bytes` past the budget evicts the
        least-recently-used entries until the cache fits again (the
        entry just inserted is never evicted, so a single oversized
        matrix still serves — the cache is then exactly one entry
        large).  ``None`` (the default) keeps the historical unbounded
        behaviour.

    Thread safety
    -------------
    All public methods are safe to call from multiple threads.  Builds
    triggered through :meth:`get_or_build_many` are *single-flight per
    node path*: concurrent misses on the same path serialise on a
    per-path lock and only the first caller invokes the build factory;
    the rest adopt its entry.  Entries are immutable
    (:class:`CacheEntry` is frozen), so a reader can never observe a
    torn value — it sees either nothing or a complete, guarded entry.
    """

    # observability handle; a plain class attribute (not set in
    # ``__init__``) so old pickles restore cleanly.
    # bind_observability() shadows it per instance.
    _obs = NOOP

    # content-change counter; a class attribute (not set in ``__init__``)
    # for the same old-pickle reason.  Instance writes shadow it.
    _version = 0

    def __init__(self, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(
                f"cache byte budget must be positive, got {max_bytes}"
            )
        self._store: OrderedDict[tuple[int, ...], CacheEntry] = OrderedDict()
        self._max_bytes = max_bytes
        self._resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.merges = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self._lock = threading.RLock()
        self._build_locks: dict[tuple[int, ...], threading.Lock] = {}

    # ------------------------------------------------------------------
    # pickling — locks cannot cross process boundaries; everything else
    # (store content, counters, budget) travels with the engine to
    # worker shards exactly as before.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state.pop("_build_locks", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._build_locks = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def max_bytes(self) -> int | None:
        """The resident-size budget (None = unbounded)."""
        return self._max_bytes

    @max_bytes.setter
    def max_bytes(self, budget: int | None) -> None:
        if budget is not None and budget <= 0:
            raise ValueError(
                f"cache byte budget must be positive, got {budget}"
            )
        with self._lock:
            self._max_bytes = budget
            self._evict_to_budget(protect=None)

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability handle (metrics mirror the counters)."""
        self._obs = obs

    @property
    def version(self) -> int:
        """Monotone content-change counter.

        Bumped on every :meth:`put`, eviction and :meth:`clear`.  A
        compiled walk kernel records the version it was built against
        and rebuilds (or falls back to the staged path) when it no
        longer matches — the eviction→invalidation contract.
        """
        with self._lock:
            return self._version

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def get(self, path: tuple[int, ...]) -> MechanismMatrix | None:
        """Look up the solved matrix for a node, counting hit/miss."""
        entry = self.entry(path)
        return None if entry is None else entry.matrix

    def _record_hit(self) -> None:
        """Count a hit on this object *and* in the metrics registry."""
        with self._lock:
            self.hits += 1
        if self._obs.enabled:
            self._obs.metrics.counter("repro_cache_hits_total").inc()

    def _record_miss(self) -> None:
        """Count a miss on this object *and* in the metrics registry."""
        with self._lock:
            self.misses += 1
        if self._obs.enabled:
            self._obs.metrics.counter("repro_cache_misses_total").inc()

    def entry(self, path: tuple[int, ...]) -> CacheEntry | None:
        """Look up the full cache entry for a node, counting hit/miss.

        A hit refreshes the entry's recency (it becomes the last in
        line for eviction).
        """
        with self._lock:
            entry = self._store.get(path)
            if entry is not None:
                self._store.move_to_end(path)
        if entry is None:
            self._record_miss()
        else:
            self._record_hit()
        return entry

    def _peek(self, path: tuple[int, ...]) -> CacheEntry | None:
        """Recency- and counter-neutral lookup (single-flight recheck)."""
        with self._lock:
            return self._store.get(path)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(
        self,
        path: tuple[int, ...],
        matrix: MechanismMatrix,
        degraded: bool = False,
        source: str = "opt",
        reason: str | None = None,
        level: int | None = None,
        epsilon: float | None = None,
    ) -> CacheEntry:
        """Store a solved matrix (with provenance) for a node.

        When a byte budget is configured, the insert may evict
        least-recently-used entries (never the one being inserted).
        """
        entry = CacheEntry(
            matrix=matrix,
            degraded=degraded,
            source=source,
            reason=reason,
            level=level,
            epsilon=epsilon,
        )
        with self._lock:
            old = self._store.get(path)
            if old is not None:
                self._resident_bytes -= old.size_bytes
            self._store[path] = entry
            self._store.move_to_end(path)
            self._resident_bytes += entry.size_bytes
            self._version += 1
            self._evict_to_budget(protect=path)
        self._record_residency()
        return entry

    def _evict_to_budget(self, protect: tuple[int, ...] | None) -> None:
        """Drop LRU entries until the budget fits.  Caller holds the lock."""
        if self._max_bytes is None:
            return
        evicted = 0
        evicted_bytes = 0
        while self._resident_bytes > self._max_bytes:
            victim_path = next(
                (p for p in self._store if p != protect), None
            )
            if victim_path is None:
                break
            victim = self._store.pop(victim_path)
            self._resident_bytes -= victim.size_bytes
            evicted += 1
            evicted_bytes += victim.size_bytes
        if evicted:
            self.evictions += evicted
            self.evicted_bytes += evicted_bytes
            self._version += 1
            if self._obs.enabled:
                metrics = self._obs.metrics
                metrics.counter("repro_cache_evictions_total").inc(evicted)
                metrics.counter(
                    "repro_cache_evicted_bytes_total"
                ).inc(evicted_bytes)

    def _record_residency(self) -> None:
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.gauge("repro_cache_resident_bytes").set(
                self._resident_bytes
            )
            metrics.gauge("repro_cache_entries").set(len(self._store))

    def _build_lock(self, path: tuple[int, ...]) -> threading.Lock:
        with self._lock:
            lock = self._build_locks.get(path)
            if lock is None:
                lock = self._build_locks[path] = threading.Lock()
            return lock

    def get_or_build_many(
        self,
        paths: Iterable[tuple[int, ...]],
        build: Callable[[tuple[int, ...]], tuple[MechanismMatrix, dict]],
    ) -> dict[tuple[int, ...], CacheEntry]:
        """Bulk get-or-build: one lookup per distinct path, solving misses.

        This is the batch sanitiser's cache warm-up: every distinct node
        of a walk level costs exactly one lookup and — on a miss — one
        call to ``build(path)``, which must return ``(matrix,
        provenance)`` where ``provenance`` holds the :meth:`put` keyword
        arguments (``degraded``/``source``/``reason``/``level``/
        ``epsilon``).  Built entries are stored through :meth:`put` and
        looked up through :meth:`entry`, so subclasses that intercept
        those (e.g. the fault harness's ``FlakyCacheProxy``) keep their
        semantics on the bulk path, and the ``hits``/``misses`` counters
        stay accurate.  ``builds`` counts the factory invocations.

        Concurrency: builds are single-flight per path.  Two threads
        missing on the same node serialise on a per-path lock; the
        loser of the race rechecks the store and adopts the winner's
        entry instead of solving the LP a second time.

        Fault safety: a ``build`` failure propagates to the caller, but
        entries built before the failure are already cached — a
        mid-batch fault costs only the affected node, never work that
        already succeeded.
        """
        obs = self._obs
        if not obs.enabled:
            out: dict[tuple[int, ...], CacheEntry] = {}
            for path in paths:
                entry = self.entry(path)
                if entry is None:
                    entry = self._build_single_flight(path, build)
                out[path] = entry
            return out
        tracer = obs.tracer
        out = {}
        for path in paths:
            with tracer.span("resolve.node", path="/".join(map(str, path))) as sp:
                with tracer.span("cache.get"):
                    entry = self.entry(path)
                hit = entry is not None
                if entry is None:
                    with tracer.span("cache.build"):
                        entry = self._build_single_flight(path, build)
                if sp is not None:
                    sp.attributes["cache_hit"] = hit
                    sp.attributes["degraded"] = entry.degraded
            out[path] = entry
        return out

    def _build_single_flight(
        self,
        path: tuple[int, ...],
        build: Callable[[tuple[int, ...]], tuple[MechanismMatrix, dict]],
    ) -> CacheEntry:
        """Build one missing entry, losing gracefully to a parallel winner."""
        with self._build_lock(path):
            entry = self._peek(path)
            if entry is not None:
                return entry
            matrix, provenance = build(path)
            with self._lock:
                self.builds += 1
            if self._obs.enabled:
                self._obs.metrics.counter("repro_cache_builds_total").inc()
            return self.put(path, matrix, **provenance)

    def snapshot(self) -> dict[tuple[int, ...], CacheEntry]:
        """A shallow copy of the store (entries are frozen, so safe to
        ship across process boundaries for :meth:`merge`)."""
        with self._lock:
            return dict(self._store)

    def merge(self, entries: dict[tuple[int, ...], CacheEntry]) -> int:
        """Adopt entries solved elsewhere (e.g. by a worker shard).

        Already-known paths are kept as-is — the local entry was solved
        and guarded first, and identical inputs yield identical LPs, so
        there is nothing to reconcile.  New entries go through
        :meth:`put` so proxy subclasses keep their interception
        semantics.  Returns the number of newly adopted entries.
        """
        adopted = 0
        for path, entry in entries.items():
            if path in self:
                continue
            self.put(
                path,
                entry.matrix,
                degraded=entry.degraded,
                source=entry.source,
                reason=entry.reason,
                level=entry.level,
                epsilon=entry.epsilon,
            )
            adopted += 1
        with self._lock:
            self.merges += 1
        if self._obs.enabled:
            self._obs.metrics.counter("repro_cache_merges_total").inc()
            self._obs.metrics.counter("repro_cache_adopted_total").inc(adopted)
        return adopted

    def degraded_entries(self) -> dict[tuple[int, ...], CacheEntry]:
        """All nodes currently running on a substituted mechanism."""
        with self._lock:
            return {p: e for p, e in self._store.items() if e.degraded}

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, path: tuple[int, ...]) -> bool:
        with self._lock:
            return path in self._store

    def clear(self) -> None:
        """Drop all cached matrices and reset the counters."""
        with self._lock:
            self._store.clear()
            self._resident_bytes = 0
            self.hits = 0
            self.misses = 0
            self.builds = 0
            self.merges = 0
            self.evictions = 0
            self.evicted_bytes = 0
            self._version += 1
        self._record_residency()

    @property
    def resident_bytes(self) -> int:
        """Exact resident footprint of the cached matrices (O(1))."""
        with self._lock:
            return self._resident_bytes

    @property
    def size_bytes(self) -> int:
        """Approximate memory footprint of the cached matrices."""
        return self.resident_bytes
