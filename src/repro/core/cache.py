"""Per-node mechanism cache for the multi-step mechanism.

The LP an MSM step solves depends only on the index node (its children's
geometry and restricted prior) and the level budget — not on the user
location.  Caching solved matrices per node therefore makes repeat
queries O(h) row samples, and precomputing the whole reachable tree is
exactly the paper's offline component: "download in advance (offline) a
set of maps annotated with additional pre-computed information"
(Section 3.1).

Since the resilience layer landed, the cache stores a
:class:`CacheEntry` per node rather than a bare matrix: the entry keeps
the provenance every degradation report needs — whether the node runs
on its LP optimum or on the substituted closed-form fallback, at which
level and epsilon, and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.mechanisms.matrix import MechanismMatrix
from repro.obs import NOOP, Observability


@dataclass(frozen=True)
class CacheEntry:
    """One node's mechanism plus the provenance the resilience layer needs.

    Attributes
    ----------
    matrix:
        The (guard-validated) step mechanism.
    degraded:
        True when the LP solve failed and ``matrix`` is the closed-form
        fallback rather than the optimum.
    source:
        Where the matrix came from: ``"opt"``, ``"exponential"`` (the
        degradation fallback) or ``"bundle"`` (restored from disk).
    reason:
        The failure that triggered degradation, when ``degraded``.
    level:
        The walk level this node's mechanism serves (1-based).
    epsilon:
        The per-level budget the matrix was validated against.
    """

    matrix: MechanismMatrix
    degraded: bool = False
    source: str = "opt"
    reason: str | None = None
    level: int | None = None
    epsilon: float | None = None


@dataclass
class NodeMechanismCache:
    """Maps an index-node path to its solved step mechanism.

    A plain dict with hit/miss accounting; the node path is a complete
    key because MSM fixes the per-level budget, metric and prior at
    construction time.
    """

    _store: dict[tuple[int, ...], CacheEntry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    builds: int = 0
    merges: int = 0

    # observability handle; a plain class attribute (not a dataclass
    # field) so existing constructor calls and pickles are unaffected.
    # bind_observability() shadows it per instance.
    _obs = NOOP

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability handle (metrics mirror the counters)."""
        self._obs = obs

    def get(self, path: tuple[int, ...]) -> MechanismMatrix | None:
        """Look up the solved matrix for a node, counting hit/miss."""
        entry = self.entry(path)
        return None if entry is None else entry.matrix

    def _record_hit(self) -> None:
        """Count a hit on this object *and* in the metrics registry."""
        self.hits += 1
        if self._obs.enabled:
            self._obs.metrics.counter("repro_cache_hits_total").inc()

    def _record_miss(self) -> None:
        """Count a miss on this object *and* in the metrics registry."""
        self.misses += 1
        if self._obs.enabled:
            self._obs.metrics.counter("repro_cache_misses_total").inc()

    def entry(self, path: tuple[int, ...]) -> CacheEntry | None:
        """Look up the full cache entry for a node, counting hit/miss."""
        entry = self._store.get(path)
        if entry is None:
            self._record_miss()
        else:
            self._record_hit()
        return entry

    def put(
        self,
        path: tuple[int, ...],
        matrix: MechanismMatrix,
        degraded: bool = False,
        source: str = "opt",
        reason: str | None = None,
        level: int | None = None,
        epsilon: float | None = None,
    ) -> CacheEntry:
        """Store a solved matrix (with provenance) for a node."""
        entry = CacheEntry(
            matrix=matrix,
            degraded=degraded,
            source=source,
            reason=reason,
            level=level,
            epsilon=epsilon,
        )
        self._store[path] = entry
        return entry

    def get_or_build_many(
        self,
        paths: Iterable[tuple[int, ...]],
        build: Callable[[tuple[int, ...]], tuple[MechanismMatrix, dict]],
    ) -> dict[tuple[int, ...], CacheEntry]:
        """Bulk get-or-build: one lookup per distinct path, solving misses.

        This is the batch sanitiser's cache warm-up: every distinct node
        of a walk level costs exactly one lookup and — on a miss — one
        call to ``build(path)``, which must return ``(matrix,
        provenance)`` where ``provenance`` holds the :meth:`put` keyword
        arguments (``degraded``/``source``/``reason``/``level``/
        ``epsilon``).  Built entries are stored through :meth:`put` and
        looked up through :meth:`entry`, so subclasses that intercept
        those (e.g. the fault harness's ``FlakyCacheProxy``) keep their
        semantics on the bulk path, and the ``hits``/``misses`` counters
        stay accurate.  ``builds`` counts the factory invocations.

        Fault safety: a ``build`` failure propagates to the caller, but
        entries built before the failure are already cached — a
        mid-batch fault costs only the affected node, never work that
        already succeeded.
        """
        obs = self._obs
        if not obs.enabled:
            out: dict[tuple[int, ...], CacheEntry] = {}
            for path in paths:
                entry = self.entry(path)
                if entry is None:
                    matrix, provenance = build(path)
                    self.builds += 1
                    entry = self.put(path, matrix, **provenance)
                out[path] = entry
            return out
        tracer = obs.tracer
        out = {}
        for path in paths:
            with tracer.span("resolve.node", path="/".join(map(str, path))) as sp:
                with tracer.span("cache.get"):
                    entry = self.entry(path)
                hit = entry is not None
                if entry is None:
                    with tracer.span("cache.build"):
                        matrix, provenance = build(path)
                    self.builds += 1
                    obs.metrics.counter("repro_cache_builds_total").inc()
                    entry = self.put(path, matrix, **provenance)
                if sp is not None:
                    sp.attributes["cache_hit"] = hit
                    sp.attributes["degraded"] = entry.degraded
            out[path] = entry
        return out

    def snapshot(self) -> dict[tuple[int, ...], CacheEntry]:
        """A shallow copy of the store (entries are frozen, so safe to
        ship across process boundaries for :meth:`merge`)."""
        return dict(self._store)

    def merge(self, entries: dict[tuple[int, ...], CacheEntry]) -> int:
        """Adopt entries solved elsewhere (e.g. by a worker shard).

        Already-known paths are kept as-is — the local entry was solved
        and guarded first, and identical inputs yield identical LPs, so
        there is nothing to reconcile.  New entries go through
        :meth:`put` so proxy subclasses keep their interception
        semantics.  Returns the number of newly adopted entries.
        """
        adopted = 0
        for path, entry in entries.items():
            if path in self._store:
                continue
            self.put(
                path,
                entry.matrix,
                degraded=entry.degraded,
                source=entry.source,
                reason=entry.reason,
                level=entry.level,
                epsilon=entry.epsilon,
            )
            adopted += 1
        self.merges += 1
        if self._obs.enabled:
            self._obs.metrics.counter("repro_cache_merges_total").inc()
            self._obs.metrics.counter("repro_cache_adopted_total").inc(adopted)
        return adopted

    def degraded_entries(self) -> dict[tuple[int, ...], CacheEntry]:
        """All nodes currently running on a substituted mechanism."""
        return {p: e for p, e in self._store.items() if e.degraded}

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, path: tuple[int, ...]) -> bool:
        return path in self._store

    def clear(self) -> None:
        """Drop all cached matrices and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.merges = 0

    @property
    def size_bytes(self) -> int:
        """Approximate memory footprint of the cached matrices."""
        return sum(e.matrix.k.nbytes for e in self._store.values())
