"""The compiled walk kernel: the warmed tree as flat arrays.

The staged :meth:`~repro.core.engine.WalkEngine.walk` is organised
around Python objects — ``IndexNode`` groups, per-node ``CacheEntry``
lookups, per-point ``StepTrace`` construction.  That shape is right for
cold caches, adaptive indexes and fault handling, but it caps the warm
hot path at Python speed.

:class:`CompiledWalk` is the same warmed tree *compiled* to a
struct-of-arrays form:

* **CSR child topology** over dense integer node ids (BFS order, root
  id 0): ``child_start``/``child_count`` index into ``child_ids``;
* **packed child geometry** per node (grid origin/cell size/shape, or
  the binary split coordinate) so locating a whole level of points is a
  handful of gathered array expressions;
* **stacked CDF arenas** per level: every warmed node's
  :attr:`~repro.mechanisms.matrix.MechanismMatrix.cdf` rows
  concatenated into one contiguous ``(rows, fanout)`` array, with a
  per-node ``row_offset`` table, so sampling a level is one cross-node
  row gather and one vectorised CDF inversion.

The float fields are the *same expressions* the staged path computes
(each index's ``child_geometry`` contract), and sampling uses the same
comparison-count inversion as ``MechanismMatrix.sample_rows``, so under
the engine's unified per-level RNG scheme the compiled walk is bitwise
identical to the staged walk — the differential fuzz suite holds the
two to byte equality.

A compiled walk is a snapshot: it records the cache ``version`` it was
built against, and the engine drops it (falling back to the staged
path, or recompiling) when the cache has since evicted or replaced
entries — the eviction→invalidation contract.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.mechanisms.matrix import invert_cdf_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import WalkEngine

#: ``kind`` codes (int8): how a node's children are located.
KIND_TERMINAL = -1
KIND_GRID = 0
KIND_SPLIT_X = 1
KIND_SPLIT_Y = 2

_KIND_CODE = {"grid": KIND_GRID, "split-x": KIND_SPLIT_X, "split-y": KIND_SPLIT_Y}


@dataclass(frozen=True)
class LevelArrays:
    """One level's walk outcome, in arrays (for telemetry and traces).

    ``active`` holds batch indices (ascending), ``ids`` the node id each
    active point walked from, and ``x_hat``/``drifted``/``reported`` the
    per-point step outcome — everything the engine needs to materialise
    exact counters, traces and degradation reports lazily.
    """

    level: int
    active: np.ndarray
    ids: np.ndarray
    x_hat: np.ndarray
    drifted: np.ndarray
    reported: np.ndarray


@dataclass
class CompiledWalk:
    """The warmed tree compiled to flat arrays (see module docstring)."""

    # per-node geometry / topology (all indexed by node id)
    kind: np.ndarray  # int8 kind codes
    min_x: np.ndarray
    min_y: np.ndarray
    max_x: np.ndarray
    max_y: np.ndarray
    cell_w: np.ndarray
    cell_h: np.ndarray
    gx: np.ndarray
    gy: np.ndarray
    split: np.ndarray
    center_x: np.ndarray
    center_y: np.ndarray
    level: np.ndarray  # 0-based node depth
    child_start: np.ndarray
    child_count: np.ndarray
    child_ids: np.ndarray
    row_offset: np.ndarray  # start row in the node's level arena, -1 terminal
    # per-node provenance (for lazy trace / degradation materialisation)
    degraded: np.ndarray  # bool
    source: list[str]
    reason: list[str]  # "" = no failure reason
    # per-level CDF arenas, index ``level`` (0-based)
    cdf_levels: list[np.ndarray]
    budgets: tuple[float, ...]
    #: root→node child-position paths, reconstructable from the CSR
    paths: list[tuple[int, ...]]
    #: cache content version this snapshot was compiled against
    cache_version: int = 0

    @property
    def n_nodes(self) -> int:
        return int(self.kind.size)

    @property
    def n_levels(self) -> int:
        return len(self.budgets)

    @property
    def nbytes(self) -> int:
        """Total bytes of the flat numeric arrays (what an arena maps).

        The per-level CDF arenas dominate; this is the figure the
        serving pool reports as ``repro_pool_arena_bytes`` — one copy
        machine-wide regardless of worker count.
        """
        total = sum(
            np.asarray(value).nbytes
            for key, value in self.to_arrays().items()
            if key not in ("source", "reason")
        )
        return int(total)

    # ------------------------------------------------------------------
    # the fused walk
    # ------------------------------------------------------------------
    def walk_arrays(
        self,
        coords: np.ndarray,
        rng: np.random.Generator,
        tracer: Any | None = None,
    ) -> tuple[np.ndarray, list[LevelArrays]]:
        """Walk every point root-to-leaf with flat per-level passes.

        Returns the final node id per point plus the per-level arrays.
        RNG consumption per level matches the staged path exactly: one
        ``rng.random(n_drifted)`` draw (skipped when no point drifted)
        followed by one ``rng.random(n_active)`` draw, both in ascending
        batch order.
        """
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        n = coords.shape[0]
        cur = np.zeros(n, dtype=np.int64)
        levels: list[LevelArrays] = []
        if n == 0:
            return cur, levels
        x = coords[:, 0]
        y = coords[:, 1]
        for lvl in range(self.n_levels):
            active = np.flatnonzero(self.child_count[cur] > 0)
            if active.size == 0:
                break
            span_ctx = (
                tracer.span("level", level=lvl + 1, epsilon=self.budgets[lvl])
                if tracer is not None
                else None
            )
            if span_ctx is not None:
                span_ctx.__enter__()
            try:
                ids = cur[active]
                ax = x[active]
                ay = y[active]
                inside = (
                    (ax >= self.min_x[ids])
                    & (ax <= self.max_x[ids])
                    & (ay >= self.min_y[ids])
                    & (ay <= self.max_y[ids])
                )
                x_hat = np.full(active.size, -1, dtype=np.int64)
                kinds = self.kind[ids]
                grid_mask = kinds == KIND_GRID
                if grid_mask.any():
                    gids = ids[grid_mask]
                    cols = np.minimum(
                        (
                            (ax[grid_mask] - self.min_x[gids])
                            / self.cell_w[gids]
                        ).astype(np.int64),
                        self.gx[gids] - 1,
                    )
                    rows = np.minimum(
                        (
                            (ay[grid_mask] - self.min_y[gids])
                            / self.cell_h[gids]
                        ).astype(np.int64),
                        self.gy[gids] - 1,
                    )
                    x_hat[grid_mask] = rows * self.gx[gids] + cols
                sx_mask = kinds == KIND_SPLIT_X
                if sx_mask.any():
                    x_hat[sx_mask] = (
                        ax[sx_mask] >= self.split[ids[sx_mask]]
                    ).astype(np.int64)
                sy_mask = kinds == KIND_SPLIT_Y
                if sy_mask.any():
                    x_hat[sy_mask] = (
                        ay[sy_mask] >= self.split[ids[sy_mask]]
                    ).astype(np.int64)
                x_hat[~inside] = -1
                drifted = x_hat < 0
                n_drifted = int(drifted.sum())
                if n_drifted:
                    r = rng.random(n_drifted)
                    fan = self.child_count[ids[drifted]]
                    x_hat[drifted] = np.minimum(
                        (r * fan).astype(np.int64), fan - 1
                    )
                u = rng.random(active.size)
                arena_rows = self.row_offset[ids] + x_hat
                reported = invert_cdf_rows(
                    self.cdf_levels[lvl][arena_rows], u
                )
                cur[active] = self.child_ids[
                    self.child_start[ids] + reported
                ]
                levels.append(
                    LevelArrays(
                        level=lvl + 1,
                        active=active,
                        ids=ids,
                        x_hat=x_hat,
                        drifted=drifted,
                        reported=reported,
                    )
                )
            finally:
                if span_ctx is not None:
                    span_ctx.__exit__(None, None, None)
        return cur, levels

    # ------------------------------------------------------------------
    # persistence / comparison
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten to plain arrays for ``np.savez`` persistence."""
        out: dict[str, np.ndarray] = {
            "kind": self.kind,
            "min_x": self.min_x,
            "min_y": self.min_y,
            "max_x": self.max_x,
            "max_y": self.max_y,
            "cell_w": self.cell_w,
            "cell_h": self.cell_h,
            "gx": self.gx,
            "gy": self.gy,
            "split": self.split,
            "center_x": self.center_x,
            "center_y": self.center_y,
            "level": self.level,
            "child_start": self.child_start,
            "child_count": self.child_count,
            "child_ids": self.child_ids,
            "row_offset": self.row_offset,
            "degraded": self.degraded,
            "source": np.asarray(self.source, dtype=np.str_),
            "reason": np.asarray(self.reason, dtype=np.str_),
            "budgets": np.asarray(self.budgets, dtype=float),
            "n_cdf_levels": np.asarray(len(self.cdf_levels), dtype=np.int64),
        }
        for lvl, cdf in enumerate(self.cdf_levels):
            out[f"cdf_{lvl}"] = cdf
        return out

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "CompiledWalk":
        """Rebuild from :meth:`to_arrays` output (paths from the CSR)."""
        n_cdf = int(np.asarray(arrays["n_cdf_levels"]).item())
        child_start = np.asarray(arrays["child_start"], dtype=np.int64)
        child_count = np.asarray(arrays["child_count"], dtype=np.int64)
        child_ids = np.asarray(arrays["child_ids"], dtype=np.int64)
        n_nodes = child_start.size
        paths: list[tuple[int, ...]] = [()] * n_nodes
        for node in range(n_nodes):
            base = child_start[node]
            for slot in range(child_count[node]):
                paths[int(child_ids[base + slot])] = paths[node] + (slot,)
        return cls(
            kind=np.asarray(arrays["kind"], dtype=np.int8),
            min_x=np.asarray(arrays["min_x"], dtype=float),
            min_y=np.asarray(arrays["min_y"], dtype=float),
            max_x=np.asarray(arrays["max_x"], dtype=float),
            max_y=np.asarray(arrays["max_y"], dtype=float),
            cell_w=np.asarray(arrays["cell_w"], dtype=float),
            cell_h=np.asarray(arrays["cell_h"], dtype=float),
            gx=np.asarray(arrays["gx"], dtype=np.int64),
            gy=np.asarray(arrays["gy"], dtype=np.int64),
            split=np.asarray(arrays["split"], dtype=float),
            center_x=np.asarray(arrays["center_x"], dtype=float),
            center_y=np.asarray(arrays["center_y"], dtype=float),
            level=np.asarray(arrays["level"], dtype=np.int64),
            child_start=child_start,
            child_count=child_count,
            child_ids=child_ids,
            row_offset=np.asarray(arrays["row_offset"], dtype=np.int64),
            degraded=np.asarray(arrays["degraded"], dtype=bool),
            source=[str(s) for s in arrays["source"]],
            reason=[str(s) for s in arrays["reason"]],
            cdf_levels=[
                np.asarray(arrays[f"cdf_{lvl}"], dtype=float)
                for lvl in range(n_cdf)
            ],
            budgets=tuple(float(b) for b in np.asarray(arrays["budgets"])),
            paths=paths,
        )

    def equals(self, other: "CompiledWalk") -> bool:
        """Bitwise equality of everything the walk consumes.

        ``cache_version`` is session-local state and deliberately not
        compared; the store uses this to verify that a persisted arena
        still matches a fresh compile of the adopted cache.  ``source``
        and ``reason`` are provenance labels the walk only reads for
        *degraded* nodes (to materialise their substitution records), so
        they are compared at degraded positions only — a warm-started
        cache legitimately relabels clean entries ``source="store"``.
        """
        mine = self.to_arrays()
        theirs = other.to_arrays()
        if mine.keys() != theirs.keys():
            return False
        degraded = np.asarray(mine["degraded"], dtype=bool)
        for key in mine:
            a, b = mine[key], theirs[key]
            if key in ("source", "reason"):
                if a.shape != b.shape:
                    return False
                if not np.array_equal(a[degraded], b[degraded]):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True


def compile_walk(
    engine: "WalkEngine", build_missing: bool = False
) -> CompiledWalk | None:
    """Compile an engine's warmed tree, or return None if not compilable.

    Not compilable means: a reachable internal node has no arithmetic
    ``child_geometry`` (adaptive tilings like the STR index), a child's
    path slot disagrees with its list position, a level mixes fanouts
    (its arena would be ragged), or — with ``build_missing=False`` — a
    needed entry is not in the cache.  ``build_missing=True`` solves
    misses through the engine's normal resolve path (counting builds
    and degradations exactly like a precompute).

    Lookups for already-cached entries go through the cache's
    counter-neutral ``_peek``, so compiling from a warm cache does not
    distort hit/miss statistics (and proxy caches keep their drop
    semantics).
    """
    index = engine.index
    budgets = engine.budgets
    n_levels = len(budgets)
    cache = engine.cache

    root = index.root
    nodes = [root]
    kids_slices: list[tuple[int, int]] = []  # (start, count) per node
    child_ids_list: list[int] = []
    matrices = []  # per internal node: (node_id, level, CacheEntry)
    queue = deque([0])
    while queue:
        node_id = queue.popleft()
        node = nodes[node_id]
        if node.level >= n_levels:
            kids_slices.append((len(child_ids_list), 0))
            continue
        children = index.children(node)
        if not children:
            kids_slices.append((len(child_ids_list), 0))
            continue
        geometry = index.child_geometry(node)
        if geometry is None or len(children) != geometry.fanout:
            return None
        for slot, child in enumerate(children):
            if child.path != node.path + (slot,):
                return None  # slot != position: CSR reconstruction breaks
        entry = cache._peek(node.path)
        if entry is None:
            if not build_missing:
                return None
            entry = engine.resolve(node, node.level + 1, children)
        if entry.matrix.shape != (len(children), len(children)):
            return None
        matrices.append((node_id, node.level, entry, geometry))
        start = len(child_ids_list)
        for child in children:
            child_id = len(nodes)
            nodes.append(child)
            child_ids_list.append(child_id)
            queue.append(child_id)
        kids_slices.append((start, len(children)))

    n_nodes = len(nodes)
    kind = np.full(n_nodes, KIND_TERMINAL, dtype=np.int8)
    min_x = np.empty(n_nodes)
    min_y = np.empty(n_nodes)
    max_x = np.empty(n_nodes)
    max_y = np.empty(n_nodes)
    cell_w = np.zeros(n_nodes)
    cell_h = np.zeros(n_nodes)
    gx = np.ones(n_nodes, dtype=np.int64)
    gy = np.ones(n_nodes, dtype=np.int64)
    split = np.zeros(n_nodes)
    center_x = np.empty(n_nodes)
    center_y = np.empty(n_nodes)
    level = np.empty(n_nodes, dtype=np.int64)
    child_start = np.empty(n_nodes, dtype=np.int64)
    child_count = np.empty(n_nodes, dtype=np.int64)
    row_offset = np.full(n_nodes, -1, dtype=np.int64)
    degraded = np.zeros(n_nodes, dtype=bool)
    source = ["" for _ in range(n_nodes)]
    reason = ["" for _ in range(n_nodes)]

    for node_id, node in enumerate(nodes):
        b = node.bounds
        min_x[node_id] = b.min_x
        min_y[node_id] = b.min_y
        max_x[node_id] = b.max_x
        max_y[node_id] = b.max_y
        center = node.center
        center_x[node_id] = center.x
        center_y[node_id] = center.y
        level[node_id] = node.level
        start, count = kids_slices[node_id]
        child_start[node_id] = start
        child_count[node_id] = count

    per_level_fanout: dict[int, int] = {}
    per_level_rows: dict[int, int] = {}
    per_level_matrices: dict[int, list] = {lvl: [] for lvl in range(n_levels)}
    for node_id, lvl, entry, geometry in matrices:
        fanout = entry.matrix.shape[1]
        known = per_level_fanout.setdefault(lvl, fanout)
        if known != fanout:
            return None  # ragged level: no contiguous arena
        row_offset[node_id] = per_level_rows.get(lvl, 0)
        per_level_rows[lvl] = row_offset[node_id] + entry.matrix.shape[0]
        per_level_matrices[lvl].append(entry.matrix)
        kind[node_id] = _KIND_CODE[geometry.kind]
        if geometry.kind == "grid":
            gx[node_id] = geometry.gx
            gy[node_id] = geometry.gy
            cell_w[node_id] = geometry.cell_w
            cell_h[node_id] = geometry.cell_h
        else:
            split[node_id] = geometry.split
        degraded[node_id] = entry.degraded
        source[node_id] = entry.source
        reason[node_id] = entry.reason or ""

    cdf_levels = []
    for lvl in range(n_levels):
        mats = per_level_matrices[lvl]
        if mats:
            cdf_levels.append(np.concatenate([m.cdf for m in mats], axis=0))
        else:
            cdf_levels.append(np.empty((0, 0)))

    return CompiledWalk(
        kind=kind,
        min_x=min_x,
        min_y=min_y,
        max_x=max_x,
        max_y=max_y,
        cell_w=cell_w,
        cell_h=cell_h,
        gx=gx,
        gy=gy,
        split=split,
        center_x=center_x,
        center_y=center_y,
        level=level,
        child_start=child_start,
        child_count=child_count,
        child_ids=np.asarray(child_ids_list, dtype=np.int64),
        row_offset=row_offset,
        degraded=degraded,
        source=source,
        reason=reason,
        cdf_levels=cdf_levels,
        budgets=budgets,
        paths=[node.path for node in nodes],
        cache_version=cache.version,
    )
