"""The paper's primary contribution: MSM and its budget-allocation model."""

from repro.core.budget import (
    BudgetPlan,
    allocate_budget,
    lattice_sum,
    min_epsilon_for_rho,
    min_lattice_parameter,
    phi,
    phi_for_grid,
)
from repro.core.bundle import BundleInfo, load_bundle, sample_from_bundle, save_bundle
from repro.core.cache import CacheEntry, NodeMechanismCache
from repro.core.ledger import (
    BudgetLedger,
    LedgerReplay,
    OpenReservation,
    replay_journal,
)
from repro.core.store import MechanismStore, StoreRecord, config_fingerprint
from repro.core.engine import (
    ExecutionPolicy,
    OptimalRemapPostProcessor,
    PostProcessor,
    SerialExecution,
    ShardedExecution,
    TelemetrySummary,
    WalkEngine,
    WalkReport,
)
from repro.core.resilience import (
    BreakerConfig,
    CircuitBreakerSolver,
    DegradationReport,
    DegradedNode,
    ResilienceConfig,
    ResilientSolver,
    SolveAttempt,
    SolveRecord,
)
from repro.core.session import SanitizationSession, SessionReport
from repro.core.msm import MultiStepMechanism, StepTrace, WalkResult

__all__ = [
    "BreakerConfig",
    "BudgetLedger",
    "BudgetPlan",
    "BundleInfo",
    "CacheEntry",
    "CircuitBreakerSolver",
    "DegradationReport",
    "DegradedNode",
    "ExecutionPolicy",
    "LedgerReplay",
    "MechanismStore",
    "OpenReservation",
    "replay_journal",
    "MultiStepMechanism",
    "NodeMechanismCache",
    "StoreRecord",
    "config_fingerprint",
    "OptimalRemapPostProcessor",
    "PostProcessor",
    "SerialExecution",
    "ShardedExecution",
    "ResilienceConfig",
    "ResilientSolver",
    "SanitizationSession",
    "SessionReport",
    "SolveAttempt",
    "SolveRecord",
    "StepTrace",
    "TelemetrySummary",
    "WalkEngine",
    "WalkReport",
    "WalkResult",
    "allocate_budget",
    "lattice_sum",
    "min_epsilon_for_rho",
    "min_lattice_parameter",
    "phi",
    "phi_for_grid",
    "load_bundle",
    "sample_from_bundle",
    "save_bundle",
]
