"""The paper's primary contribution: MSM and its budget-allocation model."""

from repro.core.budget import (
    BudgetPlan,
    allocate_budget,
    lattice_sum,
    min_epsilon_for_rho,
    min_lattice_parameter,
    phi,
    phi_for_grid,
)
from repro.core.bundle import BundleInfo, load_bundle, sample_from_bundle, save_bundle
from repro.core.cache import NodeMechanismCache
from repro.core.session import SanitizationSession, SessionReport
from repro.core.msm import MultiStepMechanism, StepTrace

__all__ = [
    "BudgetPlan",
    "BundleInfo",
    "MultiStepMechanism",
    "NodeMechanismCache",
    "SanitizationSession",
    "SessionReport",
    "StepTrace",
    "allocate_budget",
    "lattice_sum",
    "min_epsilon_for_rho",
    "min_lattice_parameter",
    "phi",
    "phi_for_grid",
    "load_bundle",
    "sample_from_bundle",
    "save_bundle",
]
