"""Alternative budget-split strategies (ablation substrate).

The paper's allocator (:func:`repro.core.budget.allocation.allocate_budget`)
is model-driven.  To quantify how much the model buys, the ablation
benchmarks compare it against structure-oblivious splits over the same
index height: uniform (the naive DP-composition default) and geometric
(budget growing by the fanout ratio towards the leaves — the *shape* of
the model's requirement sequence without its absolute calibration).
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import BudgetError

#: A strategy maps (total budget, height) to per-level budgets, top first.
BudgetStrategy = Callable[[float, int], tuple[float, ...]]


def _check(epsilon_total: float, height: int) -> None:
    if epsilon_total <= 0:
        raise BudgetError(f"total budget must be positive, got {epsilon_total}")
    if height < 1:
        raise BudgetError(f"height must be >= 1, got {height}")


def uniform_split(epsilon_total: float, height: int) -> tuple[float, ...]:
    """Equal budget at every level (naive sequential composition)."""
    _check(epsilon_total, height)
    share = epsilon_total / height
    return tuple(share for _ in range(height))


def geometric_split(
    epsilon_total: float, height: int, ratio: float = 2.0
) -> tuple[float, ...]:
    """Budgets growing by ``ratio`` per level towards the leaves.

    ``ratio = g`` mirrors the growth of the model's per-level
    requirements (cell sides shrink by ``g``, so required budgets grow
    by ``g``), making this the natural calibration-free strawman.
    """
    _check(epsilon_total, height)
    if ratio <= 0:
        raise BudgetError(f"ratio must be positive, got {ratio}")
    weights = [ratio**i for i in range(height)]
    total = sum(weights)
    return tuple(epsilon_total * w / total for w in weights)


def reverse_geometric_split(
    epsilon_total: float, height: int, ratio: float = 2.0
) -> tuple[float, ...]:
    """Budgets *shrinking* towards the leaves.

    This is the allocation shape Cormode et al. [11] recommend for
    DP spatial decompositions of *aggregate* data; the paper argues
    (Section 7) the GeoInd setting wants the opposite, and the ablation
    bench demonstrates it.
    """
    return tuple(reversed(geometric_split(epsilon_total, height, ratio)))


def named_strategy(name: str, ratio: float = 2.0) -> BudgetStrategy:
    """Look up a split strategy for CLI/bench configuration."""
    if name == "uniform":
        return uniform_split
    if name == "geometric":
        return lambda eps, h: geometric_split(eps, h, ratio)
    if name == "reverse-geometric":
        return lambda eps, h: reverse_geometric_split(eps, h, ratio)
    raise BudgetError(
        f"unknown budget strategy {name!r}; "
        "known: uniform, geometric, reverse-geometric"
    )
