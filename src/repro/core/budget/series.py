"""Analytic small-``s`` evaluation of the lattice sum ``T``.

For tight privacy budgets (``eps <= 0.5`` on km-scale cells) the direct
lattice sum needs millions of terms.  The paper (Eq. 8-9) expands T via
two-dimensional Poisson summation: the Fourier transform of
``exp(-s |x|)`` on the plane is ``2 pi s / (s^2 + 4 pi^2 |xi|^2)^{3/2}``,
so

    T(s) = 2 pi / s^2
         + sum_{k >= 1} c_{2k-1} * s^{2k-1},          (|s| < 2 pi)

    c_{2k-1} = 4 * C(-3/2, k-1) * (2 pi)^{-2k}
             * zeta(k + 1/2) * beta(k + 1/2),

where ``zeta`` is the Riemann zeta function, ``beta`` the Dirichlet
L-series ``L(., chi_4)``, and ``C`` the generalised binomial
coefficient.  The derivation (reproduced in DESIGN.md) uses the lattice
identity ``sum_n r2(n) n^{-u} = 4 zeta(u) beta(u)`` for the number
``r2(n)`` of representations of n as a sum of two squares; it confirms
the paper's Eq. (9) exactly.

The series converges geometrically with ratio ``(s / 2 pi)^2``; the
library uses it for ``s <= 4`` and the direct sum elsewhere (see
:func:`repro.core.budget.phi.lattice_sum`).
"""

from __future__ import annotations

import math
from functools import lru_cache

from scipy.special import zeta as _hurwitz_zeta

from repro.exceptions import BudgetError

#: The series' radius of convergence in s.
SERIES_RADIUS = 2.0 * math.pi

#: Hard cap on series terms (reached only pathologically close to 2 pi).
_MAX_TERMS = 500


def dirichlet_beta(u: float) -> float:
    """Dirichlet beta ``L(u, chi_4) = 1 - 3^-u + 5^-u - 7^-u + ...``.

    Evaluated exactly (not by the slowly-converging alternating series)
    through the Hurwitz-zeta identity
    ``beta(u) = 4^{-u} (zeta(u, 1/4) - zeta(u, 3/4))``.
    """
    if u <= 0:
        raise BudgetError(f"dirichlet_beta defined here only for u > 0, got {u}")
    if u == 1.0:
        # The two Hurwitz-zeta poles at u = 1 cancel analytically but not
        # in floating point; the limit is Leibniz's pi/4.
        return math.pi / 4.0
    return float(4.0**-u * (_hurwitz_zeta(u, 0.25) - _hurwitz_zeta(u, 0.75)))


def riemann_zeta(u: float) -> float:
    """Riemann zeta for ``u > 1`` (scipy's Hurwitz zeta at q = 1)."""
    if u <= 1:
        raise BudgetError(f"riemann zeta diverges at u <= 1, got {u}")
    return float(_hurwitz_zeta(u, 1.0))


@lru_cache(maxsize=None)
def series_coefficient(k: int) -> float:
    """The paper's Eq. (9): coefficient ``c_{2k-1}`` for ``k >= 1``."""
    if k < 1:
        raise BudgetError(f"series coefficients start at k = 1, got {k}")
    # C(-3/2, k-1) by the recurrence C(-3/2, j) = C(-3/2, j-1)(-3/2 - j + 1)/j.
    binom = 1.0
    for j in range(1, k):
        binom *= (-1.5 - (j - 1)) / j
    u = k + 0.5
    return (
        4.0
        * binom
        * (2.0 * math.pi) ** (-2 * k)
        * riemann_zeta(u)
        * dirichlet_beta(u)
    )


def lattice_sum_series(s: float, tol: float = 1e-12) -> float:
    """``T(s)`` by the Poisson/zeta series (Eq. 8); requires ``s < 2 pi``.

    Raises
    ------
    BudgetError
        When ``s`` is outside the series' radius of convergence — use
        :func:`repro.core.budget.lattice.lattice_sum_direct` there.
    """
    if s <= 0:
        raise BudgetError(f"lattice parameter s must be positive, got {s}")
    if s >= SERIES_RADIUS:
        raise BudgetError(
            f"series diverges at s >= 2 pi (got s = {s}); use the direct sum"
        )
    total = 2.0 * math.pi / (s * s)
    power = s  # s^(2k-1) for k = 1
    for k in range(1, _MAX_TERMS + 1):
        term = series_coefficient(k) * power
        total += term
        if abs(term) < tol * max(abs(total), 1.0):
            return total
        power *= s * s
    raise BudgetError(
        f"lattice series did not converge to tol={tol} within "
        f"{_MAX_TERMS} terms at s = {s}"
    )
