"""Budget allocation across index levels (Problem 1 + Algorithm 2).

Given a total budget ``eps``, grid parameters ``(L, g)`` and a target
same-cell probability ``rho``, the allocator determines the index height
``h`` and per-level budgets ``eps_1..eps_h``:

* **Problem 1** — the minimum ``eps_i`` such that
  ``Phi = 1 / T(eps_i * L / g^i) >= rho``.  The constraint is strictly
  monotone in ``eps_i`` (T is strictly decreasing), so the paper's
  branch-and-bound reduces to guarded root bracketing, solved here with
  Brent's method to machine precision.  Because T depends on the budget
  only through ``s = eps * cell_side``, Problem 1 is solved *once* for
  the dimensionless root ``s*`` and scaled per level:
  ``eps_i = s* * g^i / L`` — the per-level requirement grows by a factor
  of ``g`` each level down.

* **Algorithm 2** — walk levels top-down, give each level its minimum
  requirement while budget remains, and let the last level absorb the
  remainder (possibly *starved*, i.e. under its requirement — the
  effect Section 6.3 analyses).  The paper's line 6 prints
  ``max{solution, v}``, which cannot be the intended semantics (it
  would either stop after one level or overspend); we implement the
  consistent ``min`` reading — see DESIGN.md Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from scipy.optimize import brentq

from repro.exceptions import BudgetError
from repro.core.budget.phi import lattice_sum

#: Validity range for the target same-cell probability.  rho = 1 would
#: require infinite budget; rho below 1/4 is already met by eps -> 0 at
#: any realistic granularity and makes the allocation degenerate.
_RHO_MIN, _RHO_MAX = 0.01, 0.999999


@lru_cache(maxsize=4096)
def min_lattice_parameter(rho: float, tol: float = 1e-10) -> float:
    """The dimensionless root ``s*`` of ``1 / T(s) = rho``.

    ``T`` falls strictly from infinity (s -> 0) to 1 (s -> inf), so for
    every ``rho`` in (0, 1) the root exists and is unique.
    """
    if not (_RHO_MIN <= rho <= _RHO_MAX):
        raise BudgetError(
            f"rho must lie in [{_RHO_MIN}, {_RHO_MAX}], got {rho}"
        )
    target = 1.0 / rho

    def objective(s: float) -> float:
        return lattice_sum(s) - target

    lo = 1e-8
    hi = 1.0
    while objective(hi) > 0:
        hi *= 2.0
        if hi > 1e6:  # pragma: no cover - unreachable for valid rho
            raise BudgetError(f"failed to bracket the Problem-1 root for rho={rho}")
    return float(brentq(objective, lo, hi, xtol=tol, rtol=1e-12))


def min_epsilon_for_rho(rho: float, cell_side: float) -> float:
    """Problem 1: minimum budget keeping ``Pr[x|x] >= rho`` on cells of
    side ``cell_side`` km."""
    if cell_side <= 0:
        raise BudgetError(f"cell_side must be positive, got {cell_side}")
    return min_lattice_parameter(rho) / cell_side


@dataclass(frozen=True)
class BudgetPlan:
    """The allocator's output: index height and per-level budgets.

    Attributes
    ----------
    epsilon_total:
        The user's total budget; equals ``sum(budgets)`` exactly.
    granularity, side_length, rho:
        The inputs the plan was computed for.
    budgets:
        Allocated budget per level, top (coarsest) first.
    requirements:
        The Problem-1 minimum per level; ``budgets[i] < requirements[i]``
        only ever happens at the last level (starvation).
    """

    epsilon_total: float
    granularity: int
    side_length: float
    rho: float
    budgets: tuple[float, ...]
    requirements: tuple[float, ...]

    @property
    def height(self) -> int:
        """Index height ``h = |B|``."""
        return len(self.budgets)

    @property
    def leaf_granularity(self) -> int:
        """Effective granularity ``g^h`` of the leaf level."""
        return self.granularity**self.height

    @property
    def starved_levels(self) -> tuple[int, ...]:
        """Zero-based levels allocated less than their requirement."""
        return tuple(
            i
            for i, (b, r) in enumerate(zip(self.budgets, self.requirements))
            if b < r * (1.0 - 1e-12)
        )

    @property
    def is_starved(self) -> bool:
        """True when some level runs under its Problem-1 requirement."""
        return bool(self.starved_levels)


def allocate_budget(
    epsilon_total: float,
    granularity: int,
    side_length: float,
    rho: float = 0.8,
    max_height: int = 16,
) -> BudgetPlan:
    """Algorithm 2: split ``epsilon_total`` across hierarchical levels.

    Level ``i`` (1-based, cells of side ``L / g^i``) receives
    ``min(requirement_i, remaining)``; allocation stops when the budget
    is spent or ``max_height`` is reached (the paper has no explicit
    height cap because requirements grow geometrically; the cap guards
    degenerate parameter choices).  The final level absorbs whatever
    remains, so the plan always spends the budget exactly.
    """
    if epsilon_total <= 0:
        raise BudgetError(f"total budget must be positive, got {epsilon_total}")
    if granularity < 2:
        raise BudgetError(f"granularity must be >= 2, got {granularity}")
    if side_length <= 0:
        raise BudgetError(f"side_length must be positive, got {side_length}")
    if max_height < 1:
        raise BudgetError(f"max_height must be >= 1, got {max_height}")

    s_star = min_lattice_parameter(rho)
    remaining = epsilon_total
    budgets: list[float] = []
    requirements: list[float] = []
    level = 1
    while remaining > 0 and level <= max_height:
        cell_side = side_length / granularity**level
        required = s_star / cell_side
        requirements.append(required)
        if required >= remaining or level == max_height:
            budgets.append(remaining)
            remaining = 0.0
        else:
            budgets.append(required)
            remaining -= required
        level += 1
    return BudgetPlan(
        epsilon_total=epsilon_total,
        granularity=granularity,
        side_length=side_length,
        rho=rho,
        budgets=tuple(budgets),
        requirements=tuple(requirements),
    )


def allocate_budget_fixed_height(
    epsilon_total: float,
    granularity: int,
    side_length: float,
    height: int,
    rho: float = 0.8,
) -> BudgetPlan:
    """Algorithm-2-style allocation forced to an exact index height.

    Used when an experiment pins the effective leaf granularity (e.g.
    Table 2 compares MSM and OPT at equal ``g^h``), which free
    allocation would not always choose.  Non-final levels get their
    full Problem-1 requirement when affordable (the Algorithm-2 greedy
    rule); when the requirement exceeds the remainder — where free
    allocation would have stopped — the remainder is split across the
    surviving levels *top-heavily*, proportionally to the inverse of
    their requirements.  That fallback follows the paper's allocation
    philosophy (keep ``Pr[x|x]`` high at the upper levels, because a
    wrong step near the root costs ``g`` times the utility of the same
    step one level down) and measurably beats a requirement-
    proportional split in the budget-strategy ablation.  The last level
    absorbs whatever is left, so the plan spends the budget exactly.
    """
    if height < 1:
        raise BudgetError(f"height must be >= 1, got {height}")
    if epsilon_total <= 0:
        raise BudgetError(f"total budget must be positive, got {epsilon_total}")
    s_star = min_lattice_parameter(rho)
    requirements = tuple(
        s_star * granularity**level / side_length
        for level in range(1, height + 1)
    )
    budgets: list[float] = []
    remaining = epsilon_total
    for i in range(height):
        if i == height - 1:
            budgets.append(remaining)
            break
        if requirements[i] < remaining:
            allocated = requirements[i]
        else:
            inverse_tail = sum(1.0 / r for r in requirements[i:])
            allocated = remaining * (1.0 / requirements[i]) / inverse_tail
        budgets.append(allocated)
        remaining -= allocated
    return BudgetPlan(
        epsilon_total=epsilon_total,
        granularity=granularity,
        side_length=side_length,
        rho=rho,
        budgets=tuple(budgets),
        requirements=requirements,
    )
