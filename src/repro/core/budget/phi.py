"""The same-cell probability estimate ``Phi``.

Section 5 of the paper approximates ``Pr[x|x]`` — the probability that a
GeoInd mechanism over a grid maps a cell to itself — by

    Phi(x) = 1 / T(eps * L / g)

with T the lattice sum.  ``Phi`` drives the whole budget-allocation
strategy: keep it at least ``rho`` at every index level, spending as
little budget as possible.

This module picks the right T evaluator for the regime and exposes the
user-facing ``phi``/``epsilon``/``cell-side`` parametrisations.
"""

from __future__ import annotations

from repro.exceptions import BudgetError
from repro.core.budget.lattice import lattice_sum_direct
from repro.core.budget.series import SERIES_RADIUS, lattice_sum_series

#: Crossover point between the analytic series and the direct sum.  At
#: s = 4 the series converges with ratio (4 / 2pi)^2 ~ 0.41 while the
#: direct sum already needs only a ~10-term radius, so both are cheap
#: and they cross-validate each other in tests.
_SERIES_CUTOFF = 4.0


def lattice_sum(s: float, tol: float = 1e-12) -> float:
    """``T(s)`` by the best method for the regime of ``s``."""
    if s <= 0:
        raise BudgetError(f"lattice parameter s must be positive, got {s}")
    if s < min(_SERIES_CUTOFF, SERIES_RADIUS):
        return lattice_sum_series(s, tol)
    return lattice_sum_direct(s, tol)


def phi(epsilon: float, cell_side: float, tol: float = 1e-12) -> float:
    """Estimated ``Pr[x|x]`` for a grid of square cells of side ``cell_side``.

    Parameters
    ----------
    epsilon:
        Privacy budget applied at this grid (per km).
    cell_side:
        Cell side in km (``L / g`` in the paper's notation).
    """
    if epsilon <= 0:
        raise BudgetError(f"epsilon must be positive, got {epsilon}")
    if cell_side <= 0:
        raise BudgetError(f"cell_side must be positive, got {cell_side}")
    return 1.0 / lattice_sum(epsilon * cell_side, tol)


def phi_for_grid(epsilon: float, side_length: float, granularity: int,
                 tol: float = 1e-12) -> float:
    """``Phi`` in the paper's ``(eps, L, g)`` parametrisation (Eq. 7)."""
    if granularity < 1:
        raise BudgetError(f"granularity must be >= 1, got {granularity}")
    return phi(epsilon, side_length / granularity, tol)
