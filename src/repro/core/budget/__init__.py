"""Budget-allocation model (Section 5 of the paper)."""

from repro.core.budget.allocation import (
    BudgetPlan,
    allocate_budget,
    allocate_budget_fixed_height,
    min_epsilon_for_rho,
    min_lattice_parameter,
)
from repro.core.budget.lattice import (
    lattice_sum_direct,
    same_cell_mass,
    truncation_radius,
)
from repro.core.budget.phi import lattice_sum, phi, phi_for_grid
from repro.core.budget.series import (
    SERIES_RADIUS,
    dirichlet_beta,
    lattice_sum_series,
    riemann_zeta,
    series_coefficient,
)
from repro.core.budget.strategies import (
    BudgetStrategy,
    geometric_split,
    named_strategy,
    reverse_geometric_split,
    uniform_split,
)

__all__ = [
    "BudgetPlan",
    "BudgetStrategy",
    "SERIES_RADIUS",
    "allocate_budget",
    "allocate_budget_fixed_height",
    "dirichlet_beta",
    "geometric_split",
    "lattice_sum",
    "lattice_sum_direct",
    "lattice_sum_series",
    "min_epsilon_for_rho",
    "min_lattice_parameter",
    "named_strategy",
    "phi",
    "phi_for_grid",
    "reverse_geometric_split",
    "riemann_zeta",
    "same_cell_mass",
    "series_coefficient",
    "truncation_radius",
    "uniform_split",
]
