"""Direct evaluation of the lattice sum ``T``.

Section 5 of the paper reduces the budget model to the lattice sum

    T(s) = sum over (a, b) in Z^2 of exp(-s * sqrt(a^2 + b^2)),

with ``s = eps * L / g`` (the privacy parameter times the cell side).
The same-cell probability estimate is ``Phi = 1 / T(s)``.

This module computes T by direct truncated summation — the ground-truth
method, valid for every ``s > 0``.  Terms decay like ``r * exp(-s r)``
over lattice radius ``r``, so the truncation radius for a target
accuracy grows as ``~ 1/s``; the analytic series of
:mod:`repro.core.budget.series` takes over for small ``s`` where direct
summation would need millions of terms.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import BudgetError

#: Beyond this radius*s, exp(-s r) underflows any practical tolerance.
_LOG_TOL_FLOOR = 45.0

#: Block edge for chunked evaluation, bounding peak memory to ~32 MB.
_BLOCK = 2048


def truncation_radius(s: float, tol: float = 1e-12) -> int:
    """Smallest integer radius R with tail mass below ``tol``.

    The tail beyond radius R is bounded by the integral
    ``2 pi * exp(-s R) * (R / s + 1 / s^2) * e^{s}`` (ring density times
    the radial decay); we solve ``tail(R) <= tol`` by fixed-point
    iteration on the logarithm, which converges in a handful of steps.
    """
    if s <= 0:
        raise BudgetError(f"lattice parameter s must be positive, got {s}")
    target = -math.log(max(tol, 1e-300))
    r = max((target + _LOG_TOL_FLOOR) / s, 2.0)
    for _ in range(8):
        poly = math.log(2.0 * math.pi * (r / s + 1.0 / (s * s)) + 1.0)
        r = (target + poly) / s + 1.0
    return int(math.ceil(r)) + 1


def lattice_sum_direct(s: float, tol: float = 1e-12) -> float:
    """``T(s)`` by direct summation over the truncated integer lattice.

    Exploits the 4-fold symmetry of the lattice: the open quadrant
    ``a >= 1, b >= 0`` is summed once and counted four times, plus the
    origin term 1.
    """
    radius = truncation_radius(s, tol)
    total = 1.0  # origin
    # Quadrant a in [1, R], b in [0, R]; block over a to bound memory.
    b_axis = np.arange(0, radius + 1, dtype=float)
    b_sq = b_axis * b_axis
    for a_start in range(1, radius + 1, _BLOCK):
        a_axis = np.arange(
            a_start, min(a_start + _BLOCK, radius + 1), dtype=float
        )
        r = np.sqrt(a_axis[:, None] ** 2 + b_sq[None, :])
        block = np.exp(-s * r, where=r <= radius, out=np.zeros_like(r))
        total += 4.0 * float(block.sum())
    return total


def same_cell_mass(s: float, tol: float = 1e-12) -> float:
    """``Phi = 1 / T(s)`` via direct summation (Eq. 7 of the paper)."""
    return 1.0 / lattice_sum_direct(s, tol)
