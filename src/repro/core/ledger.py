"""Durable budget ledger: a crash-safe write-ahead journal of spend.

The privacy guarantee of the serving tier is exactly as strong as its
budget accounting.  :class:`~repro.serve.SanitizationServer` keeps each
user's remaining lifetime epsilon in process memory; without a durable
record a crash or restart silently *resets* every ledger to zero and
lets users overdraw — the one failure mode the fail-closed design must
never allow ("failures cost utility, never privacy").

:class:`BudgetLedger` closes that hole with a classic write-ahead
journal and a **reserve → sample → commit** two-phase protocol:

``reserve``
    Written (and fsync'd) *before* the request may sample.  A
    reservation counts as spent from the moment it is durable, so a
    crash at any later point replays as spend — fail closed.
``commit``
    Settles a reservation: the spend is final (the report was
    delivered, or the batch failed after sampling may have begun —
    either way the epsilon is gone).  Audit-trail only; replay counts
    the reserve whether or not its commit survived.
``release``
    Refunds a reservation that **provably never sampled** — abandoned
    before dispatch (caller deadline elapsed), or drained by
    ``stop()``.  The only op that subtracts, and the caller carries the
    burden of proof: a release is only honoured when its reservation is
    in the journal and was not committed first.

Journal format — one JSON object per line::

    {"seq": 17, "op": "reserve", "id": "u1-17", "user": "u1",
     "eps": 0.5, "crc": "9f2a10cc"}

``crc`` is the CRC-32 of the canonical JSON of the other fields, so a
torn write (the classic crash artefact: a partial last line) or a
flipped byte is detected per entry.  Replay is deliberately lenient in
the fail-closed direction: unreadable lines are *skipped and counted*
(never fatal), every readable reservation is spend, and a release
whose reservation was lost to corruption is ignored — corruption can
only ever *increase* the replayed spend, never refund it.

Entry ids are idempotent: replay deduplicates reservations by id, so
an append retried after an ambiguous crash cannot double-charge.

Compaction (:meth:`BudgetLedger.compact`) folds settled history into
per-user ``snapshot`` entries and re-emits still-open reservations
verbatim (so their later commit/release still matches), writing the
new journal through the same tmp-file → fsync → ``os.replace`` →
directory-fsync sequence the mechanism store uses — a reader never
observes a torn journal file.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.exceptions import LedgerError
from repro.obs import NOOP, Observability

#: Journal format version, stamped into every entry's payload is not
#: needed — the op vocabulary is the format.  Bump the filename-level
#: convention instead if the line layout ever changes.
_OPS = ("reserve", "commit", "release", "snapshot")


def _checksum(payload: dict) -> str:
    """CRC-32 (hex) of the canonical JSON of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(canonical.encode()) & 0xFFFFFFFF:08x}"


def _encode(payload: dict) -> bytes:
    entry = dict(payload)
    entry["crc"] = _checksum(payload)
    return (
        json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def _decode(line: bytes) -> dict | None:
    """Parse and verify one journal line; None when unreadable."""
    try:
        entry = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(entry, dict):
        return None
    crc = entry.pop("crc", None)
    if crc != _checksum(entry):
        return None
    op = entry.get("op")
    if op not in _OPS:
        return None
    if op in ("reserve", "snapshot"):
        eps = entry.get("eps")
        user = entry.get("user")
        if not isinstance(user, str):
            return None
        if not isinstance(eps, (int, float)) or eps <= 0:
            return None
    if op in ("reserve", "commit", "release"):
        if not isinstance(entry.get("id"), str):
            return None
    return entry


def fsync_directory(directory: str | Path) -> None:
    """fsync a directory so a rename into it is durable.

    Best-effort on platforms whose filesystems refuse directory fds
    (the rename itself is still atomic there).
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class OpenReservation:
    """A reservation with no settling commit/release in the journal."""

    entry_id: str
    user: str
    epsilon: float


@dataclass
class LedgerReplay:
    """What replaying a journal reconstructed.

    ``spent`` is the fail-closed per-user account: every readable
    reservation (settled or not) plus every snapshot, minus only the
    releases whose reservation was present and uncommitted.
    """

    spent: dict[str, float] = field(default_factory=dict)
    entries: int = 0
    corrupt_lines: int = 0
    open_reservations: dict[str, OpenReservation] = field(
        default_factory=dict
    )
    committed: int = 0
    released: int = 0
    #: highest sequence number observed (including those embedded in
    #: reservation ids, which can outlive compaction); the reopened
    #: ledger continues from here so no fresh reserve can ever re-mint
    #: a live entry id.
    max_seq: int = 0

    def spent_for(self, user: str) -> float:
        """Replayed spend for one user (0 for unknown users)."""
        return self.spent.get(user, 0.0)


def replay_journal(path: str | Path) -> LedgerReplay:
    """Reconstruct per-user spend from a journal file.

    Never raises on corruption: unreadable lines are skipped and
    counted in ``corrupt_lines``.  A missing file replays as empty.
    """
    path = Path(path)
    replay = LedgerReplay()
    if not path.exists():
        return replay
    seen_ids: set[str] = set()
    settled: set[str] = set()
    with open(path, "rb") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            entry = _decode(line)
            if entry is None:
                replay.corrupt_lines += 1
                continue
            replay.entries += 1
            seq = entry.get("seq")
            if isinstance(seq, int):
                replay.max_seq = max(replay.max_seq, seq)
            entry_id = entry.get("id")
            if isinstance(entry_id, str):
                _, _, suffix = entry_id.rpartition("-")
                if suffix.isdigit():
                    replay.max_seq = max(replay.max_seq, int(suffix))
            op = entry["op"]
            if op == "snapshot":
                user = entry["user"]
                replay.spent[user] = (
                    replay.spent.get(user, 0.0) + float(entry["eps"])
                )
            elif op == "reserve":
                entry_id = entry["id"]
                if entry_id in seen_ids:
                    continue  # idempotent retry of the same append
                seen_ids.add(entry_id)
                user = entry["user"]
                eps = float(entry["eps"])
                replay.spent[user] = replay.spent.get(user, 0.0) + eps
                replay.open_reservations[entry_id] = OpenReservation(
                    entry_id=entry_id, user=user, epsilon=eps
                )
            elif op == "commit":
                entry_id = entry["id"]
                reservation = replay.open_reservations.pop(entry_id, None)
                if reservation is not None:
                    settled.add(entry_id)
                    replay.committed += 1
            elif op == "release":
                entry_id = entry["id"]
                if entry_id in settled:
                    continue  # commit wins: the spend is final
                reservation = replay.open_reservations.pop(entry_id, None)
                if reservation is None:
                    # Reservation lost to corruption (or never made
                    # durable): ignoring the release errs toward
                    # counting spend, never toward refunding it.
                    continue
                settled.add(entry_id)
                replay.released += 1
                remaining = (
                    replay.spent.get(reservation.user, 0.0)
                    - reservation.epsilon
                )
                replay.spent[reservation.user] = max(0.0, remaining)
    return replay


def replay_many(paths: "Iterable[str | Path]") -> LedgerReplay:
    """Replay several shard journals into one fail-closed account.

    The multi-worker serving pool shards budget accounting by user-id
    hash: each user's journal entries live in exactly one shard file,
    so merging replays is a disjoint union — per-user spend adds (a
    user appearing in two shards would indicate a resharding bug, and
    adding is the fail-closed way to count it), corrupt-line counts
    add, and open reservations union (entry ids embed the user, so
    shards cannot collide on a live id in a correct deployment; a
    collision keeps the first-seen reservation, which only ever
    over-counts).
    """
    merged = LedgerReplay()
    for path in paths:
        replay = replay_journal(path)
        for user, eps in replay.spent.items():
            merged.spent[user] = merged.spent.get(user, 0.0) + eps
        merged.entries += replay.entries
        merged.corrupt_lines += replay.corrupt_lines
        merged.committed += replay.committed
        merged.released += replay.released
        merged.max_seq = max(merged.max_seq, replay.max_seq)
        for entry_id, reservation in replay.open_reservations.items():
            merged.open_reservations.setdefault(entry_id, reservation)
    return merged


class BudgetLedger:
    """Append-only, fsync'd, checksummed journal of budget spend.

    Parameters
    ----------
    path:
        The journal file.  Created (with parents) on first append;
        replayed on open when it already exists.
    sync:
        fsync every append (the default, and the mode the crash-safety
        guarantee assumes).  ``sync=False`` trades durability of the
        *last few* entries for throughput — replay is then still
        consistent, merely stale — and exists for benchmarks and tests.

    Thread-safe: appends serialise on an internal lock (the serving
    front-end reserves under its own admission lock and commits from
    the dispatcher thread).
    """

    def __init__(
        self,
        path: str | Path,
        sync: bool = True,
        obs: Observability | None = None,
    ):
        self._path = Path(path)
        self._sync = bool(sync)
        self._obs = obs if obs is not None else NOOP
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._replay = replay_journal(self._path)
        # corrupt lines still advance the sequence: a torn reserve may
        # have carried a seq we can no longer read, and reusing it
        # would collide with a retry of the same append.
        self._seq = (
            self._replay.max_seq + self._replay.corrupt_lines
        )
        self._spent: dict[str, float] = dict(self._replay.spent)
        self._open: dict[str, OpenReservation] = dict(
            self._replay.open_reservations
        )
        self._settled: set[str] = set()
        try:
            self._fh = open(self._path, "ab")
        except OSError as exc:
            raise LedgerError(
                f"cannot open budget journal {self._path}: {exc}"
            ) from exc
        self._record_replay()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The journal file."""
        return self._path

    @property
    def replay(self) -> LedgerReplay:
        """What opening this ledger reconstructed from disk."""
        return self._replay

    def spent_by_user(self) -> dict[str, float]:
        """Current per-user spend (replayed + appended), a copy."""
        with self._lock:
            return dict(self._spent)

    def spent_for(self, user: str) -> float:
        """Current spend for one user."""
        with self._lock:
            return self._spent.get(user, 0.0)

    def open_reservations(self) -> dict[str, OpenReservation]:
        """Reservations not yet committed or released (a copy)."""
        with self._lock:
            return dict(self._open)

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability handle (ledger traffic metrics)."""
        self._obs = obs
        self._record_replay()

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def reserve(self, user: str, epsilon: float) -> str:
        """Journal a reservation; returns its entry id.

        Durable (fsync'd) before this returns, so the caller may
        sample afterwards knowing a crash replays the spend.
        """
        if epsilon <= 0:
            raise LedgerError(
                f"reservation epsilon must be positive, got {epsilon}"
            )
        with self._lock:
            self._seq += 1
            entry_id = f"{user}-{self._seq}"
            self._append(
                {
                    "seq": self._seq,
                    "op": "reserve",
                    "id": entry_id,
                    "user": user,
                    "eps": float(epsilon),
                }
            )
            self._spent[user] = self._spent.get(user, 0.0) + float(epsilon)
            self._open[entry_id] = OpenReservation(
                entry_id=entry_id, user=user, epsilon=float(epsilon)
            )
            self._count("reserve")
            return entry_id

    def commit(self, entry_id: str) -> None:
        """Settle a reservation as finally spent."""
        with self._lock:
            reservation = self._open.pop(entry_id, None)
            if reservation is None:
                if entry_id in self._settled:
                    return  # idempotent double-settle
                raise LedgerError(
                    f"commit for unknown reservation {entry_id!r}"
                )
            self._settled.add(entry_id)
            self._seq += 1
            self._append(
                {"seq": self._seq, "op": "commit", "id": entry_id}
            )
            self._count("commit")

    def release(self, entry_id: str) -> None:
        """Refund a reservation that provably never sampled."""
        with self._lock:
            reservation = self._open.pop(entry_id, None)
            if reservation is None:
                if entry_id in self._settled:
                    return  # already settled; the earlier decision wins
                raise LedgerError(
                    f"release for unknown reservation {entry_id!r}"
                )
            self._settled.add(entry_id)
            self._seq += 1
            self._append(
                {"seq": self._seq, "op": "release", "id": entry_id}
            )
            remaining = (
                self._spent.get(reservation.user, 0.0) - reservation.epsilon
            )
            self._spent[reservation.user] = max(0.0, remaining)
            self._count("release")

    def _append(self, payload: dict) -> None:
        """Write one entry; caller holds the lock."""
        try:
            self._fh.write(_encode(payload))
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            raise LedgerError(
                f"cannot append to budget journal {self._path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # compaction and lifecycle
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the journal as snapshots + open reservations.

        Settled history collapses into one ``snapshot`` entry per user;
        open reservations are re-emitted verbatim so a later commit or
        release still matches.  Returns the number of entries in the
        compacted journal.  Atomic: the new journal is fully written
        and fsync'd in a temp file before ``os.replace`` publishes it.
        """
        with self._lock:
            open_eps: dict[str, float] = {}
            for reservation in self._open.values():
                open_eps[reservation.user] = (
                    open_eps.get(reservation.user, 0.0)
                    + reservation.epsilon
                )
            entries: list[dict] = []
            seq = 0
            for user in sorted(self._spent):
                settled = self._spent[user] - open_eps.get(user, 0.0)
                if settled <= 0:
                    continue
                seq += 1
                entries.append(
                    {
                        "seq": seq,
                        "op": "snapshot",
                        "user": user,
                        "eps": settled,
                    }
                )
            for entry_id in sorted(self._open):
                reservation = self._open[entry_id]
                seq += 1
                entries.append(
                    {
                        "seq": seq,
                        "op": "reserve",
                        "id": reservation.entry_id,
                        "user": reservation.user,
                        "eps": reservation.epsilon,
                    }
                )
            tmp = self._path.with_name(self._path.name + ".compact-tmp")
            try:
                with open(tmp, "wb") as fh:
                    for payload in entries:
                        fh.write(_encode(payload))
                    fh.flush()
                    os.fsync(fh.fileno())
                self._fh.close()
                os.replace(tmp, self._path)
                fsync_directory(self._path.parent)
            except OSError as exc:
                raise LedgerError(
                    f"compaction of {self._path} failed: {exc}"
                ) from exc
            finally:
                if tmp.exists():
                    tmp.unlink()
                if self._fh.closed:
                    self._fh = open(self._path, "ab")
            # _seq keeps counting monotonically: resetting it could mint
            # a reserve id colliding with a re-emitted open reservation,
            # and replay's id-dedup would then undercount the spend.
            self._seq = max(self._seq, seq)
            if self._obs.enabled:
                self._obs.metrics.counter(
                    "repro_ledger_compactions_total"
                ).inc()
            return len(entries)

    def close(self) -> None:
        """Flush and close the journal file handle."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                if self._sync:
                    try:
                        os.fsync(self._fh.fileno())
                    except OSError:  # pragma: no cover
                        pass
                self._fh.close()

    def __enter__(self) -> "BudgetLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _count(self, op: str) -> None:
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("repro_ledger_appends_total", op=op).inc()
            metrics.gauge("repro_ledger_open_reservations").set(
                len(self._open)
            )

    def _record_replay(self) -> None:
        if not self._obs.enabled:
            return
        metrics = self._obs.metrics
        metrics.gauge("repro_ledger_replayed_users").set(
            len(self._replay.spent)
        )
        metrics.gauge("repro_ledger_replayed_epsilon").set(
            sum(self._replay.spent.values())
        )
        metrics.gauge("repro_ledger_corrupt_lines").set(
            self._replay.corrupt_lines
        )
