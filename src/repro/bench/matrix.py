"""Declarative benchmark matrices.

A benchmark matrix is the cross product
``mechanisms x indexes x datasets x epsilons`` plus a workload
configuration (how many points to push through each cell, how many
samples feed the empirical-epsilon estimate).  Matrices are named and
versioned in code — ``smoke`` is the CI gate (small enough to run on
every push), ``full`` is the scheduled sweep — so a run artifact can
always be traced back to the exact cell set that produced it.

Every mechanism in a matrix must be able to produce an exact
:class:`~repro.mechanisms.matrix.MechanismMatrix` over the cell's leaf
grid: the Oya-style metric panel (conditional entropy, worst-case
loss) is mandatory for every cell, not just the ones where it is easy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import EvaluationError

#: Mechanism dimension values understood by the runner.  ``msm-kernel``
#: is the MSM served through the compiled array-walk kernel (same
#: mechanism, same distribution — a distinct column so the sampling
#: path's throughput and its privacy/utility panel are gated too).
MECHANISMS = ("msm", "msm-remap", "msm-kernel", "pl", "exp")

#: Dataset dimension values understood by the runner.  ``graph-city``
#: is the synthetic road network (no I/O, fully deterministic); it is
#: only meaningful with a ``kind="graph"`` index and the staged MSM.
DATASETS = ("uniform", "gowalla", "yelp", "graph-city")

#: Index dimension kinds: ``gihi`` is the planar hierarchical grid,
#: ``graph`` the road-network balanced edge-cut partition.
INDEX_KINDS = ("gihi", "graph")


@dataclass(frozen=True)
class IndexSpec:
    """One value of the index dimension: a GIHI geometry or a graph
    partition.

    For ``kind="gihi"`` (the default) ``granularity`` is the per-level
    fanout ``g``, ``height`` the tree depth ``h``; the leaf grid is
    ``g**h x g**h``.  Flat (grid) mechanisms in the same cell column use
    the identical leaf grid, so losses are comparable across the
    mechanism dimension.  For ``kind="graph"`` the same two numbers
    parameterise a :class:`~repro.graph.partition.GraphPartitionIndex`
    (per-node fanout and tree height) over the synthetic road network.
    """

    granularity: int
    height: int
    kind: str = "gihi"

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise EvaluationError(
                f"unknown index kind {self.kind!r}; choose from {INDEX_KINDS}"
            )
        if self.granularity < 2:
            raise EvaluationError("index granularity must be >= 2")
        if self.height < 1:
            raise EvaluationError("index height must be >= 1")

    @property
    def leaf_granularity(self) -> int:
        return self.granularity**self.height

    @property
    def label(self) -> str:
        if self.kind == "graph":
            return f"graph-f{self.granularity}h{self.height}"
        return f"gihi-g{self.granularity}h{self.height}"


@dataclass(frozen=True)
class DatasetSpec:
    """One value of the dataset dimension.

    ``uniform`` is the synthetic uniform prior over the 20 km square
    (no I/O, fully deterministic); ``gowalla``/``yelp`` load the
    check-in datasets scaled by ``fraction``.
    """

    name: str
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.name not in DATASETS:
            raise EvaluationError(
                f"unknown dataset {self.name!r}; choose from {DATASETS}"
            )
        if not (0.0 < self.fraction <= 1.0):
            raise EvaluationError("dataset fraction must be in (0, 1]")

    @property
    def label(self) -> str:
        if self.name == "uniform" or self.fraction == 1.0:
            return self.name
        return f"{self.name}-{self.fraction:g}"


@dataclass(frozen=True)
class CellSpec:
    """One fully-resolved benchmark cell."""

    mechanism: str
    index: IndexSpec
    dataset: DatasetSpec
    epsilon: float

    def __post_init__(self) -> None:
        if self.mechanism not in MECHANISMS:
            raise EvaluationError(
                f"unknown mechanism {self.mechanism!r}; "
                f"choose from {MECHANISMS}"
            )
        if self.epsilon <= 0:
            raise EvaluationError("cell epsilon must be positive")
        graph_index = self.index.kind == "graph"
        graph_dataset = self.dataset.name == "graph-city"
        if graph_index != graph_dataset:
            raise EvaluationError(
                "graph cells must pair a kind='graph' index with the "
                "'graph-city' dataset (and vice versa); got "
                f"index={self.index.label!r}, dataset={self.dataset.label!r}"
            )
        if graph_index and self.mechanism != "msm":
            raise EvaluationError(
                "graph cells support only the staged 'msm' mechanism "
                "(flat grid mechanisms and the compiled kernel are "
                f"planar-only); got {self.mechanism!r}"
            )

    @property
    def cell_id(self) -> str:
        """Stable identity used to match run cells against baselines."""
        return (
            f"{self.mechanism}|{self.index.label}|"
            f"{self.dataset.label}|eps{self.epsilon:g}"
        )


@dataclass(frozen=True)
class MatrixSpec:
    """A named benchmark matrix plus its workload configuration.

    Attributes
    ----------
    name:
        Registry key; recorded in every artifact.
    mechanisms / indexes / datasets / epsilons:
        The four matrix dimensions.
    n_points:
        Throughput workload size per cell.
    n_eval_inputs:
        How many evenly-spaced leaf centres feed the empirical-epsilon
        estimate.
    n_eval_samples:
        Samples drawn per evaluation input.
    n_timing_repeats:
        Throughput is the best of this many timed passes (noise from a
        shared machine only ever slows a pass down, so the minimum is
        the honest estimate of the code's speed).
    rho:
        Budget-allocation target passed to the MSM builder.
    extra_cells:
        Fully-resolved cells appended after the cross product — used
        for combinations that only make sense pointwise (the graph
        cells pair one dataset with one index kind and one mechanism,
        so putting them in the product dimensions would explode into
        invalid cells).
    """

    name: str
    mechanisms: tuple[str, ...]
    indexes: tuple[IndexSpec, ...]
    datasets: tuple[DatasetSpec, ...]
    epsilons: tuple[float, ...]
    extra_cells: tuple[CellSpec, ...] = ()
    n_points: int = 5_000
    n_eval_inputs: int = 6
    n_eval_samples: int = 3_000
    n_timing_repeats: int = 3
    rho: float = 0.8

    def __post_init__(self) -> None:
        if not (
            self.mechanisms and self.indexes
            and self.datasets and self.epsilons
        ):
            raise EvaluationError("matrix dimensions must be non-empty")
        if self.n_points < 1 or self.n_eval_samples < 1:
            raise EvaluationError("workload sizes must be positive")
        if self.n_timing_repeats < 1:
            raise EvaluationError("n_timing_repeats must be >= 1")
        if self.n_eval_inputs < 2:
            raise EvaluationError(
                "empirical epsilon needs at least 2 evaluation inputs"
            )

    def cells(self) -> Iterator[CellSpec]:
        """The cross product, then the extra cells, in deterministic order."""
        for mechanism in self.mechanisms:
            for index in self.indexes:
                for dataset in self.datasets:
                    for epsilon in self.epsilons:
                        yield CellSpec(mechanism, index, dataset, epsilon)
        yield from self.extra_cells

    def __len__(self) -> int:
        return (
            len(self.mechanisms) * len(self.indexes)
            * len(self.datasets) * len(self.epsilons)
            + len(self.extra_cells)
        )


#: The two road-network smoke cells: the staged MSM over the balanced
#: edge-cut partition of the synthetic city, gated at the same two
#: budget points as the planar cells.
_GRAPH_SMOKE_CELLS = tuple(
    CellSpec(
        "msm",
        IndexSpec(granularity=4, height=2, kind="graph"),
        DatasetSpec("graph-city"),
        eps,
    )
    for eps in (0.5, 1.0)
)

#: The CI gate matrix: 10 cells, < 1 minute on a laptop.  One planar
#: geometry, one real dataset at a small fraction, the three mechanism
#: families plus the compiled-kernel MSM column, two budget points —
#: plus the two road-network cells.
SMOKE = MatrixSpec(
    name="smoke",
    mechanisms=("msm", "msm-kernel", "pl", "exp"),
    indexes=(IndexSpec(granularity=3, height=2),),
    datasets=(DatasetSpec("gowalla", fraction=0.05),),
    epsilons=(0.5, 1.0),
    extra_cells=_GRAPH_SMOKE_CELLS,
    n_points=20_000,
    n_eval_inputs=6,
    n_eval_samples=3_000,
    n_timing_repeats=5,
)

#: The scheduled sweep: every mechanism (including the remapped MSM),
#: two geometries, two datasets plus the uniform control, three budget
#: points — 48 cells, allowed to be slow.
FULL = MatrixSpec(
    name="full",
    mechanisms=("msm", "msm-remap", "pl", "exp"),
    indexes=(
        IndexSpec(granularity=3, height=2),
        IndexSpec(granularity=4, height=2),
    ),
    datasets=(
        DatasetSpec("uniform"),
        DatasetSpec("gowalla", fraction=0.25),
    ),
    epsilons=(0.5, 1.0, 2.0),
    n_points=50_000,
    n_eval_inputs=8,
    n_eval_samples=4_000,
    n_timing_repeats=5,
)

MATRICES: dict[str, MatrixSpec] = {m.name: m for m in (SMOKE, FULL)}


def get_matrix(name: str) -> MatrixSpec:
    """Look up a named matrix, with a helpful error."""
    try:
        return MATRICES[name]
    except KeyError:
        raise EvaluationError(
            f"unknown benchmark matrix {name!r}; "
            f"available: {sorted(MATRICES)}"
        ) from None
