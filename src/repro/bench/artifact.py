"""Versioned benchmark artifacts.

Every benchmark run — a full matrix run or one of the legacy
``bench_*`` scripts — persists a JSON artifact in one envelope:

.. code-block:: json

    {
      "schema_version": 1,
      "kind": "matrix" | "bench",
      "git_sha": "...",          // provenance
      "seed": 20190326,          // the run's root seed
      "host": {"python": "...", "platform": "...", "cpu_count": 8},
      ...                        // kind-specific payload
    }

``kind == "matrix"`` artifacts carry ``matrix`` (the matrix name),
``config`` (workload sizes) and ``cells`` — one entry per
{mechanism x index x dataset x epsilon} cell, each with the full metric
panel.  ``kind == "bench"`` artifacts carry ``benchmark`` (the script
slug) and ``results`` (the script's legacy payload, unchanged), which
is how the pre-harness ``BENCH_*.json`` files stay auditable without
losing their committed history.

Validation is hand-rolled (no jsonschema dependency): the checker
accumulates every problem instead of stopping at the first, so a
``compare`` failure on a malformed artifact diagnoses itself.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any

from repro.exceptions import EvaluationError

#: Bump when the envelope or the cell metric panel changes shape.
SCHEMA_VERSION = 1

#: Metric keys every matrix cell must report.  ``conditional_entropy``
#: and ``worst_case_loss`` are deliberately mandatory — the Oya et al.
#: point is that they are not optional extras.
REQUIRED_CELL_METRICS = (
    "throughput_pts_per_s",
    "mean_loss_km",
    "worst_case_loss_km",
    "adversarial_error_km",
    "identification_rate",
    "conditional_entropy_bits",
    "prior_entropy_bits",
    "empirical_epsilon",
    "epsilon_tight",
)

_REQUIRED_HOST_KEYS = ("python", "platform", "cpu_count")


class ArtifactError(EvaluationError):
    """A benchmark artifact failed schema validation."""


def git_sha(repo_root: Path | None = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def host_info() -> dict[str, Any]:
    """The machine fingerprint recorded in every artifact."""
    import os

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def envelope(kind: str, seed: int | None) -> dict[str, Any]:
    """A fresh artifact envelope with provenance filled in."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "git_sha": git_sha(),
        "created_unix": round(time.time(), 3),
        "seed": seed,
        "host": host_info(),
    }


def wrap_legacy(
    benchmark: str, results: dict[str, Any], seed: int | None
) -> dict[str, Any]:
    """Wrap a legacy ``bench_*`` payload in the versioned envelope."""
    artifact = envelope("bench", seed)
    artifact["benchmark"] = benchmark
    artifact["results"] = results
    return artifact


def validation_errors(artifact: Any) -> list[str]:
    """Every schema problem in ``artifact`` (empty list == valid)."""
    errors: list[str] = []
    if not isinstance(artifact, dict):
        return [f"artifact must be an object, got {type(artifact).__name__}"]
    version = artifact.get("schema_version")
    if version != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {version!r}"
        )
    kind = artifact.get("kind")
    if kind not in ("matrix", "bench"):
        errors.append(f"kind must be 'matrix' or 'bench', got {kind!r}")
    if not isinstance(artifact.get("git_sha"), str):
        errors.append("git_sha must be a string")
    seed = artifact.get("seed")
    if seed is not None and not isinstance(seed, int):
        errors.append(f"seed must be an integer or null, got {seed!r}")
    host = artifact.get("host")
    if not isinstance(host, dict):
        errors.append("host must be an object")
    else:
        for key in _REQUIRED_HOST_KEYS:
            if key not in host:
                errors.append(f"host.{key} is missing")
    if kind == "bench":
        if not isinstance(artifact.get("benchmark"), str):
            errors.append("bench artifacts need a string 'benchmark'")
        if not isinstance(artifact.get("results"), dict):
            errors.append("bench artifacts need an object 'results'")
    elif kind == "matrix":
        if not isinstance(artifact.get("matrix"), str):
            errors.append("matrix artifacts need a string 'matrix' name")
        cells = artifact.get("cells")
        if not isinstance(cells, list) or not cells:
            errors.append("matrix artifacts need a non-empty 'cells' list")
        else:
            for i, cell in enumerate(cells):
                errors.extend(_cell_errors(cell, i))
    return errors


def _cell_errors(cell: Any, i: int) -> list[str]:
    where = f"cells[{i}]"
    if not isinstance(cell, dict):
        return [f"{where} must be an object"]
    errors = []
    for key in ("cell_id", "mechanism", "index", "dataset"):
        if not isinstance(cell.get(key), str):
            errors.append(f"{where}.{key} must be a string")
    if not isinstance(cell.get("epsilon"), (int, float)):
        errors.append(f"{where}.epsilon must be a number")
    metrics = cell.get("metrics")
    if not isinstance(metrics, dict):
        errors.append(f"{where}.metrics must be an object")
        return errors
    for key in REQUIRED_CELL_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)):
            errors.append(
                f"{where}.metrics.{key} must be a number, got {value!r}"
            )
    return errors


def validate_artifact(artifact: Any) -> dict[str, Any]:
    """Return ``artifact`` if schema-valid, else raise with every problem."""
    errors = validation_errors(artifact)
    if errors:
        raise ArtifactError(
            "invalid benchmark artifact:\n  " + "\n  ".join(errors)
        )
    return artifact


def save_artifact(artifact: dict[str, Any], path: str | Path) -> Path:
    """Validate and write an artifact as pretty-printed JSON."""
    validate_artifact(artifact)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Read and validate an artifact from disk."""
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no artifact at {path}")
    try:
        artifact = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path} is not valid JSON: {exc}") from exc
    try:
        return validate_artifact(artifact)
    except ArtifactError as exc:
        raise ArtifactError(f"{path}: {exc}") from None
