"""Paper-figure-style rendering of matrix run artifacts.

One :class:`~repro.eval.results.ResultTable` per dataset, rows ordered
as the matrix enumerates cells, columns mirroring the paper's
presentation (utility and timing side by side) extended with the
Oya-style privacy panel.  The rendering is deliberately deterministic —
it is golden-file tested, and a stable text form makes CI diffs of two
runs readable.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.eval.results import ResultTable

#: Column order of the per-dataset tables.
_COLUMNS = [
    "mechanism",
    "index",
    "eps",
    "loss_km",
    "worst_km",
    "adv_err_km",
    "H(X|Z)_bits",
    "emp_eps",
    "kpts_per_s",
]


def report_tables(artifact: Mapping[str, Any]) -> list[ResultTable]:
    """Render a matrix artifact as one table per dataset."""
    datasets: dict[str, list[dict]] = {}
    for cell in artifact["cells"]:
        datasets.setdefault(cell["dataset"], []).append(cell)
    tables = []
    for dataset, cells in datasets.items():
        table = ResultTable(
            title=(
                f"Benchmark matrix {artifact['matrix']!r} — "
                f"dataset {dataset}"
            ),
            columns=list(_COLUMNS),
            notes=(
                f"git {str(artifact.get('git_sha', 'unknown'))[:12]}, "
                f"seed {artifact.get('seed')}, "
                f"{artifact.get('config', {}).get('n_points', '?')} "
                "points/cell"
            ),
        )
        for cell in cells:
            m = cell["metrics"]
            table.add_row(
                cell["mechanism"],
                cell["index"],
                cell["epsilon"],
                m["mean_loss_km"],
                m["worst_case_loss_km"],
                m["adversarial_error_km"],
                m["conditional_entropy_bits"],
                m["empirical_epsilon"],
                m["throughput_pts_per_s"] / 1000.0,
            )
        tables.append(table)
    return tables


def format_report(artifact: Mapping[str, Any]) -> str:
    """All tables of a run, as one stable text block."""
    return "\n\n".join(t.format() for t in report_tables(artifact))
