"""Benchmark-matrix harness with privacy/utility regression gates.

``repro bench run`` executes a named {mechanism x index x dataset x
epsilon} matrix and persists a versioned artifact; ``repro bench
compare`` diffs a run against a committed baseline under per-metric
tolerance bands and exits non-zero on regression; ``repro bench
report`` renders paper-figure-style tables.  See ``DESIGN.md`` §12 for
the schema and the gating policy.
"""

from repro.bench.artifact import (
    REQUIRED_CELL_METRICS,
    SCHEMA_VERSION,
    ArtifactError,
    load_artifact,
    save_artifact,
    validate_artifact,
    validation_errors,
    wrap_legacy,
)
from repro.bench.compare import (
    BENCH_TOLERANCES,
    DEFAULT_TOLERANCES,
    Comparison,
    MetricVerdict,
    Tolerance,
    compare_artifacts,
    format_comparison,
    parse_tolerance_overrides,
)
from repro.bench.load import (
    COMMITTED_SINGLE_CORE_REQ_S,
    LoadSpec,
    run_load_benchmark,
    zipf_workload,
)
from repro.bench.matrix import (
    MATRICES,
    CellSpec,
    DatasetSpec,
    IndexSpec,
    MatrixSpec,
    get_matrix,
)
from repro.bench.report import format_report, report_tables
from repro.bench.runner import ROOT_SEED, cell_seed, run_cell, run_matrix

__all__ = [
    "ArtifactError",
    "BENCH_TOLERANCES",
    "COMMITTED_SINGLE_CORE_REQ_S",
    "CellSpec",
    "Comparison",
    "DEFAULT_TOLERANCES",
    "DatasetSpec",
    "IndexSpec",
    "LoadSpec",
    "MATRICES",
    "MatrixSpec",
    "MetricVerdict",
    "REQUIRED_CELL_METRICS",
    "ROOT_SEED",
    "SCHEMA_VERSION",
    "Tolerance",
    "cell_seed",
    "compare_artifacts",
    "format_comparison",
    "format_report",
    "get_matrix",
    "load_artifact",
    "parse_tolerance_overrides",
    "report_tables",
    "run_cell",
    "run_load_benchmark",
    "run_matrix",
    "save_artifact",
    "validate_artifact",
    "validation_errors",
    "wrap_legacy",
    "zipf_workload",
]
