"""Open-loop load benchmark for the multi-worker serving pool.

Measures what the pool tentpole claims: saturation throughput across
worker processes and tail latency under paced open-loop load, against
the single-process :class:`~repro.serve.server.SanitizationServer`
baseline committed in ``BENCH_serve.json``.

Two phases, both over the same Zipf-skewed synthetic traffic (user
arrivals drawn from a discrete Zipf over ``n_users`` ranks — a few hot
users and a long tail, the shape an LBS actually sees and the worst
case for hash sharding):

* **saturation** — every request is submitted as fast as admission
  allows and throughput is completed requests over wall clock.  This
  is the ceiling number the ≥10× acceptance gate reads.
* **paced open-loop** — requests are *scheduled* at a fixed arrival
  rate (a fraction of the measured saturation) and each latency is
  measured **from its scheduled arrival time**, not from when the
  submitting loop got around to it.  A stalled server therefore
  inflates the recorded tail instead of silently pausing the load
  generator — the classic coordinated-omission correction — and the
  p50/p95/p99 quantiles are honest.

Honesty on small hosts: the pool cannot beat one core with one core.
The result records ``cpu_count``, flags ``single_core_machine``, and
sets ``expected_gate`` accordingly (the same convention as
``benchmarks/bench_engine.py``); the ≥10× assertion is only armed on
a multi-core host, and a committed single-core artifact documents the
serial fallback rather than fabricating a speedup.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bench.runner import ROOT_SEED, cell_seed
from repro.exceptions import ServeError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior
from repro.serve.server import SanitizationServer, ServerConfig

__all__ = [
    "COMMITTED_SINGLE_CORE_REQ_S",
    "LoadSpec",
    "run_load_benchmark",
    "zipf_workload",
]

#: The committed single-core serving throughput this benchmark gates
#: against (``BENCH_serve.json``, dispatcher-thread server, ROADMAP
#: item 2's "287 req/s" figure).
COMMITTED_SINGLE_CORE_REQ_S = 287.0

#: The benchmark domain (same 20 km square as the rest of the suite).
DOMAIN_SIDE_KM = 20.0

#: GIHI geometry shared with ``BENCH_serve`` (g=3, h=3: 91 nodes).
GRANULARITY = 3
HEIGHT = 3
BUDGETS = (0.4, 0.5, 0.6)


class LoadSpec:
    """Workload configuration for one load-benchmark run."""

    def __init__(
        self,
        workers: int = 2,
        total_requests: int = 5_000,
        n_users: int = 200,
        zipf_s: float = 1.1,
        open_loop_fraction: float = 0.5,
        coalesce_window: float = 0.002,
        max_batch: int = 512,
        ledger: bool = False,
        baseline_requests: int | None = None,
        seed: int = ROOT_SEED,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if total_requests < 10:
            raise ValueError("total_requests must be >= 10")
        if n_users < 1:
            raise ValueError("n_users must be >= 1")
        if not (0.0 < open_loop_fraction <= 1.0):
            raise ValueError("open_loop_fraction must be in (0, 1]")
        self.workers = int(workers)
        self.total_requests = int(total_requests)
        self.n_users = int(n_users)
        self.zipf_s = float(zipf_s)
        self.open_loop_fraction = float(open_loop_fraction)
        self.coalesce_window = float(coalesce_window)
        self.max_batch = int(max_batch)
        self.ledger = bool(ledger)
        self.baseline_requests = (
            min(2_000, total_requests)
            if baseline_requests is None
            else int(baseline_requests)
        )
        self.seed = int(seed)


def zipf_workload(
    spec: LoadSpec, stream: str = "load-arrivals"
) -> list[tuple[str, Point]]:
    """Draw ``(user_id, location)`` arrivals for ``spec``.

    Users are ranks ``1..n_users`` with arrival probability
    proportional to ``1 / rank**zipf_s`` (a bounded discrete Zipf —
    ``numpy``'s unbounded ``Generator.zipf`` would concentrate all mass
    on rank 1 for small ``s`` and has no user-count cap).  Locations
    are uniform over the domain square.
    """
    gen = np.random.default_rng(cell_seed(spec.seed, stream))
    ranks = np.arange(1, spec.n_users + 1, dtype=float)
    pmf = ranks**-spec.zipf_s
    pmf /= pmf.sum()
    users = gen.choice(spec.n_users, size=spec.total_requests, p=pmf)
    xs = gen.uniform(0.0, DOMAIN_SIDE_KM, size=spec.total_requests)
    ys = gen.uniform(0.0, DOMAIN_SIDE_KM, size=spec.total_requests)
    return [
        (f"user-{int(rank):04d}", Point(float(x), float(y)))
        for rank, x, y in zip(users, xs, ys)
    ]


def _build_prior() -> GridPrior:
    square = BoundingBox.square(Point(0.0, 0.0), DOMAIN_SIDE_KM)
    leaf = GRANULARITY**HEIGHT
    return GridPrior.uniform(RegularGrid(square, leaf))


def _build_msm(obs=None):
    from repro.core.msm import MultiStepMechanism

    square = BoundingBox.square(Point(0.0, 0.0), DOMAIN_SIDE_KM)
    index = HierarchicalGrid(square, GRANULARITY, HEIGHT)
    msm = MultiStepMechanism(index, BUDGETS, _build_prior(), obs=obs)
    msm.precompute()
    return msm


def _submit_all(submit: Callable, arrivals, result_of: Callable) -> tuple:
    """Saturation phase: push every arrival as fast as admission
    allows (brief backoff on overload), then drain completions."""
    handles = []
    start = time.perf_counter()
    for user_id, x in arrivals:
        while True:
            try:
                handles.append(submit(user_id, x))
                break
            except ServeError as exc:
                if exc.reason != "overload":
                    raise
                time.sleep(0.0005)
    reports = [result_of(handle) for handle in handles]
    elapsed = time.perf_counter() - start
    return reports, elapsed


def _percentiles_ms(latencies: np.ndarray) -> dict[str, float]:
    return {
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p95_ms": float(np.percentile(latencies, 95) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "max_ms": float(latencies.max() * 1e3),
    }


def run_load_benchmark(
    spec: LoadSpec | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the full load benchmark and return the results payload
    (the ``results`` half of a ``kind == "bench"`` artifact)."""
    import tempfile

    from repro.serve.arena import MechanismArena
    from repro.serve.pool import ServingPool

    spec = spec if spec is not None else LoadSpec()
    say = progress if progress is not None else (lambda _msg: None)
    per_report = float(sum(BUDGETS))
    # lifetime large enough that the hottest Zipf user is never
    # refused: throughput, not admission control, is under test
    config = ServerConfig(
        lifetime_epsilon=per_report * spec.total_requests,
        per_report_epsilon=per_report,
        coalesce_window=spec.coalesce_window,
        max_batch=spec.max_batch,
    )
    arrivals = zipf_workload(spec)
    cpu_count = os.cpu_count() or 1

    say(f"building mechanism (GIHI g={GRANULARITY} h={HEIGHT})...")
    msm = _build_msm()
    compiled = msm.engine.compile(build=True)
    if compiled is None:
        raise ServeError(
            "benchmark mechanism did not compile", reason="bench"
        )

    results: dict[str, Any] = {
        "benchmark": "pool-load",
        "workers": spec.workers,
        "cpu_count": cpu_count,
        "single_core_machine": cpu_count < 2,
        # the ≥10x multi-worker gate only makes sense with cores to
        # spend; on one core the pool documents its serial fallback
        "expected_gate": "none" if cpu_count < 2 else "multicore-10x",
        "committed_single_core_req_s": COMMITTED_SINGLE_CORE_REQ_S,
        "total_requests": spec.total_requests,
        "n_users": spec.n_users,
        "zipf_s": spec.zipf_s,
        "ledger": spec.ledger,
        "per_report_epsilon": per_report,
        "index": f"GIHI g={GRANULARITY} h={HEIGHT}",
        "seed": spec.seed,
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-load-") as tmp:
        arena = MechanismArena.freeze(compiled, Path(tmp) / "arena")
        results["arena_bytes"] = arena.nbytes
        ledger_dir = (Path(tmp) / "ledgers") if spec.ledger else None
        pool = ServingPool(
            arena,
            config,
            workers=spec.workers,
            ledger_dir=ledger_dir,
            seed=spec.seed,
        )
        with pool:
            # ---- phase 1: saturation --------------------------------
            say(
                f"saturation: {spec.total_requests} requests across "
                f"{spec.workers} workers..."
            )
            _, elapsed = _submit_all(
                pool.submit,
                arrivals,
                lambda handle: handle.future.result(timeout=120.0),
            )
            saturation_req_s = spec.total_requests / elapsed
            results["saturation"] = {
                "requests": spec.total_requests,
                "elapsed_seconds": round(elapsed, 4),
                "req_per_s": round(saturation_req_s, 1),
            }

            # ---- phase 2: paced open loop ---------------------------
            target_rate = max(
                1.0, saturation_req_s * spec.open_loop_fraction
            )
            say(f"open loop at {target_rate:.0f} req/s...")
            n_open = spec.total_requests
            latencies = np.full(n_open, np.inf)
            rejected = 0
            pending = []
            t0 = time.perf_counter()
            for i, (user_id, x) in enumerate(arrivals):
                scheduled = t0 + i / target_rate
                now = time.perf_counter()
                if scheduled > now:
                    time.sleep(scheduled - now)
                try:
                    handle = pool.submit(user_id, x)
                except ServeError:
                    rejected += 1
                    continue

                def _record(fut, idx=i, sched=scheduled):
                    latencies[idx] = time.perf_counter() - sched

                handle.future.add_done_callback(_record)
                pending.append(handle)
            for handle in pending:
                handle.future.result(timeout=120.0)
            finite = latencies[np.isfinite(latencies)]
            open_loop: dict[str, Any] = {
                "target_req_per_s": round(target_rate, 1),
                "completed": int(finite.size),
                "rejected": rejected,
            }
            open_loop.update(_percentiles_ms(finite))
            results["open_loop"] = open_loop

            stats = pool.stats()
            results["pool_stats"] = {
                "batches": stats.batches,
                "coalesced": stats.coalesced,
                "max_batch_points": stats.max_batch_points,
                "sessions": stats.sessions,
                "rejected_budget": stats.rejected_budget,
                "respawns": stats.respawns,
            }
            if stats.rejected_budget:
                raise ServeError(
                    "load benchmark misconfigured: budget rejections "
                    "contaminate the throughput measurement",
                    reason="bench",
                )

    # ---- phase 3: in-run single-process baseline --------------------
    n_base = spec.baseline_requests
    say(f"single-process baseline: {n_base} requests...")
    baseline_server = SanitizationServer.build(
        _build_prior(),
        ServerConfig(
            lifetime_epsilon=config.lifetime_epsilon,
            per_report_epsilon=per_report,
            coalesce_window=spec.coalesce_window,
            max_batch=spec.max_batch,
        ),
        granularity=GRANULARITY,
        seed=spec.seed,
    )

    def _await_pending(handle):
        handle.done.wait(120.0)
        if handle.error is not None:
            raise handle.error
        return handle.report

    with baseline_server:
        _, base_elapsed = _submit_all(
            baseline_server.submit, arrivals[:n_base], _await_pending
        )
    baseline_req_s = n_base / base_elapsed
    results["baseline_single_process"] = {
        "requests": n_base,
        "elapsed_seconds": round(base_elapsed, 4),
        "req_per_s": round(baseline_req_s, 1),
    }
    results["speedup_vs_inrun_baseline"] = round(
        saturation_req_s / baseline_req_s, 2
    )
    results["speedup_vs_committed"] = round(
        saturation_req_s / COMMITTED_SINGLE_CORE_REQ_S, 2
    )
    if cpu_count < 2:
        results["note"] = (
            "single-core host: the pool's workers time-slice one core, "
            "so the multi-core >=10x gate is not armed "
            "(expected_gate='none'); throughput gains here come from "
            "micro-batch amortisation alone and the speedup columns "
            "are reported for transparency, not as the gate."
        )
    return results
