"""Regression gating: diff a run artifact against a committed baseline.

Every gated metric carries a *direction* (which way is a regression)
and a *relative tolerance band*.  The bands encode the measurement
physics, not wishful thinking:

* exact metrics (losses, entropies, adversarial error, tight epsilon)
  are deterministic closed-form computations — tight 10% bands exist
  only to absorb BLAS/quadrature jitter across platforms;
* the sampled empirical epsilon is fixed-seed deterministic on one
  platform; 10% also covers numpy stream differences;
* throughput is machine-dependent — the default band allows a 45%
  drop, and CI passes a looser ``--tolerance`` because a shared runner
  is not the baseline machine (the band is a *floor*, catching
  order-of-magnitude regressions, not 10% wobble).

The verdict per (cell, metric) is ``pass`` / ``fail`` /
``missing-baseline`` (run has a cell the baseline lacks — informational)
/ ``missing-run`` (baseline cell disappeared from the run — a gate
failure, silently dropping a cell must not pass CI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import EvaluationError

#: Verdict values, in increasing severity.
PASS = "pass"
MISSING_BASELINE = "missing-baseline"
FAIL = "fail"
MISSING_RUN = "missing-run"


@dataclass(frozen=True)
class Tolerance:
    """One metric's gating policy.

    ``direction`` is ``"higher_is_worse"`` (losses, epsilons: the gate
    fires when the run exceeds baseline by more than ``rel_tol``) or
    ``"lower_is_worse"`` (throughput, entropy, adversarial error: the
    gate fires when the run falls more than ``rel_tol`` below).
    """

    direction: str
    rel_tol: float

    def __post_init__(self) -> None:
        if self.direction not in ("higher_is_worse", "lower_is_worse"):
            raise EvaluationError(
                f"unknown tolerance direction {self.direction!r}"
            )
        if self.rel_tol < 0:
            raise EvaluationError("rel_tol must be non-negative")

    def regressed(self, run: float, baseline: float) -> bool:
        """Whether ``run`` regresses past the band around ``baseline``."""
        if math.isnan(run) or math.isnan(baseline):
            return True  # a metric that stopped being computable is a bug
        if math.isinf(baseline):
            # An infinite baseline (e.g. disjoint-support tight epsilon)
            # gates nothing in the higher-is-worse direction.
            return (
                self.direction == "lower_is_worse" and not math.isinf(run)
            )
        if baseline == 0.0 and self.direction == "higher_is_worse":
            # A relative band around zero is degenerate (any positive
            # value exceeds it).  A zero baseline usually means "no
            # evidence" — e.g. the sampled empirical epsilon saw no
            # well-sampled shared cells — so gate with the band as an
            # *absolute* slack instead.
            return run > self.rel_tol + 1e-12
        if self.direction == "higher_is_worse":
            return run > baseline * (1.0 + self.rel_tol) + 1e-12
        return run < baseline * (1.0 - self.rel_tol) - 1e-12


#: The gated metric set and default bands (see module docstring).
DEFAULT_TOLERANCES: dict[str, Tolerance] = {
    "throughput_pts_per_s": Tolerance("lower_is_worse", 0.45),
    "mean_loss_km": Tolerance("higher_is_worse", 0.10),
    "worst_case_loss_km": Tolerance("higher_is_worse", 0.10),
    "adversarial_error_km": Tolerance("lower_is_worse", 0.10),
    "identification_rate": Tolerance("higher_is_worse", 0.10),
    "conditional_entropy_bits": Tolerance("lower_is_worse", 0.10),
    "empirical_epsilon": Tolerance("higher_is_worse", 0.10),
    "epsilon_tight": Tolerance("higher_is_worse", 0.10),
}

#: Gated metrics for ``kind == "bench"`` artifacts (the committed
#: ``BENCH_*.json`` files).  All throughputs or throughput ratios, so
#: they share the machine-dependent 45% floor band.
BENCH_TOLERANCES: dict[str, Tolerance] = {
    "serial_points_per_second": Tolerance("lower_is_worse", 0.45),
    "kernel_points_per_second": Tolerance("lower_is_worse", 0.45),
    "sharded_points_per_second": Tolerance("lower_is_worse", 0.45),
    "kernel_speedup": Tolerance("lower_is_worse", 0.45),
    "speedup": Tolerance("lower_is_worse", 0.45),
}

#: The sharded-throughput band: only meaningful when process sharding
#: can actually win, i.e. on multi-core hosts.  When either artifact
#: declares ``expected_gate == "none"`` (single-core serial fallback)
#: these metrics are skipped rather than compared across regimes.
_SHARDED_METRICS = frozenset({"sharded_points_per_second", "speedup"})


def parse_tolerance_overrides(
    overrides: list[str] | None,
) -> dict[str, Tolerance]:
    """Merge ``metric=rel_tol`` CLI strings over the defaults."""
    tolerances = {**DEFAULT_TOLERANCES, **BENCH_TOLERANCES}
    for item in overrides or []:
        name, _, value = item.partition("=")
        name = name.strip()
        if name not in tolerances:
            raise EvaluationError(
                f"unknown gated metric {name!r}; "
                f"gated: {sorted(tolerances)}"
            )
        try:
            rel_tol = float(value)
        except ValueError:
            raise EvaluationError(
                f"tolerance override {item!r} is not metric=FLOAT"
            ) from None
        tolerances[name] = Tolerance(tolerances[name].direction, rel_tol)
    return tolerances


@dataclass(frozen=True)
class MetricVerdict:
    """One (cell, metric) comparison outcome."""

    cell_id: str
    metric: str
    verdict: str
    run_value: float | None
    baseline_value: float | None
    direction: str | None
    rel_tol: float | None

    @property
    def delta_pct(self) -> float | None:
        """Relative change run vs baseline, in percent."""
        if (
            self.run_value is None
            or self.baseline_value is None
            or not math.isfinite(self.baseline_value)
            or self.baseline_value == 0
        ):
            return None
        return 100.0 * (self.run_value - self.baseline_value) / abs(
            self.baseline_value
        )


@dataclass(frozen=True)
class Comparison:
    """Full diff of a run against a baseline."""

    matrix: str
    run_sha: str
    baseline_sha: str
    verdicts: tuple[MetricVerdict, ...]

    @property
    def failures(self) -> tuple[MetricVerdict, ...]:
        return tuple(
            v for v in self.verdicts if v.verdict in (FAIL, MISSING_RUN)
        )

    @property
    def new_cells(self) -> tuple[MetricVerdict, ...]:
        return tuple(
            v for v in self.verdicts if v.verdict == MISSING_BASELINE
        )

    @property
    def ok(self) -> bool:
        """The gate verdict: no regressions and no dropped cells."""
        return not self.failures


def _cells_by_id(artifact: Mapping[str, Any]) -> dict[str, dict]:
    return {cell["cell_id"]: cell for cell in artifact["cells"]}


def _declared_gate(artifact: Mapping[str, Any]) -> str:
    """A bench artifact's sharded-throughput regime.

    Prefers the recorded ``expected_gate`` field; artifacts that
    predate it fall back to the recorded ``cpu_count``.
    """
    results = artifact.get("results", {})
    gate = results.get("expected_gate")
    if gate is not None:
        return str(gate)
    cpu = results.get(
        "cpu_count", artifact.get("host", {}).get("cpu_count", 1)
    )
    return "none" if int(cpu) < 2 else "multicore"


def _compare_bench(
    run: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerances: Mapping[str, Tolerance] | None,
) -> Comparison:
    """Gate one legacy ``BENCH_*.json`` payload against its baseline."""
    if run.get("benchmark") != baseline.get("benchmark"):
        raise EvaluationError(
            f"benchmark mismatch: run is {run.get('benchmark')!r}, "
            f"baseline is {baseline.get('benchmark')!r}"
        )
    name = str(run.get("benchmark"))
    gated = {
        metric: (tolerances or {}).get(metric, tol)
        for metric, tol in BENCH_TOLERANCES.items()
    }
    skip_sharded = (
        _declared_gate(run) == "none" or _declared_gate(baseline) == "none"
    )
    run_results = run.get("results", {})
    base_results = baseline.get("results", {})
    verdicts: list[MetricVerdict] = []
    for metric, tol in gated.items():
        if skip_sharded and metric in _SHARDED_METRICS:
            continue
        base_value = base_results.get(metric)
        if base_value is None:
            continue  # baseline predates the metric: nothing to gate
        run_value = run_results.get(metric)
        if run_value is None:
            verdicts.append(
                MetricVerdict(
                    name, metric, FAIL, None, float(base_value),
                    tol.direction, tol.rel_tol,
                )
            )
            continue
        verdict = (
            FAIL
            if tol.regressed(float(run_value), float(base_value))
            else PASS
        )
        verdicts.append(
            MetricVerdict(
                name, metric, verdict, float(run_value),
                float(base_value), tol.direction, tol.rel_tol,
            )
        )
    return Comparison(
        matrix=name,
        run_sha=str(run.get("git_sha", "unknown")),
        baseline_sha=str(baseline.get("git_sha", "unknown")),
        verdicts=tuple(verdicts),
    )


def compare_artifacts(
    run: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerances: Mapping[str, Tolerance] | None = None,
) -> Comparison:
    """Gate ``run`` against ``baseline``, metric by metric.

    Two ``kind == "matrix"`` artifacts diff cell-by-cell over the
    matrix metric panel; two ``kind == "bench"`` artifacts (the same
    ``benchmark`` slug) diff their flat throughput payloads.
    """
    if run.get("kind") == "bench" and baseline.get("kind") == "bench":
        return _compare_bench(run, baseline, tolerances)
    if run.get("kind") != "matrix" or baseline.get("kind") != "matrix":
        raise EvaluationError(
            "compare needs two matrix artifacts or two bench artifacts "
            f"(got kinds {run.get('kind')!r} vs {baseline.get('kind')!r})"
        )
    if run.get("matrix") != baseline.get("matrix"):
        raise EvaluationError(
            f"matrix mismatch: run is {run.get('matrix')!r}, "
            f"baseline is {baseline.get('matrix')!r}"
        )
    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    run_cells = _cells_by_id(run)
    base_cells = _cells_by_id(baseline)
    verdicts: list[MetricVerdict] = []

    for cell_id, base_cell in base_cells.items():
        run_cell = run_cells.get(cell_id)
        if run_cell is None:
            verdicts.append(
                MetricVerdict(
                    cell_id, "*", MISSING_RUN, None, None, None, None
                )
            )
            continue
        for metric, tol in tolerances.items():
            base_value = base_cell["metrics"].get(metric)
            run_value = run_cell["metrics"].get(metric)
            if base_value is None:
                continue  # baseline predates the metric: nothing to gate
            if run_value is None:
                verdicts.append(
                    MetricVerdict(
                        cell_id, metric, FAIL, None, float(base_value),
                        tol.direction, tol.rel_tol,
                    )
                )
                continue
            verdict = (
                FAIL
                if tol.regressed(float(run_value), float(base_value))
                else PASS
            )
            verdicts.append(
                MetricVerdict(
                    cell_id, metric, verdict, float(run_value),
                    float(base_value), tol.direction, tol.rel_tol,
                )
            )
    for cell_id in run_cells:
        if cell_id not in base_cells:
            verdicts.append(
                MetricVerdict(
                    cell_id, "*", MISSING_BASELINE, None, None, None, None
                )
            )
    return Comparison(
        matrix=str(run.get("matrix")),
        run_sha=str(run.get("git_sha", "unknown")),
        baseline_sha=str(baseline.get("git_sha", "unknown")),
        verdicts=tuple(verdicts),
    )


def format_comparison(comparison: Comparison) -> str:
    """Human-readable per-metric diagnosis (stable — golden-tested)."""
    lines = [
        f"== bench compare: matrix {comparison.matrix!r} ==",
        f"run {comparison.run_sha[:12]} vs "
        f"baseline {comparison.baseline_sha[:12]}",
    ]
    checked = [
        v for v in comparison.verdicts if v.verdict in (PASS, FAIL)
    ]
    lines.append(
        f"{len(checked)} metric checks across "
        f"{len({v.cell_id for v in checked})} cells"
    )
    for v in comparison.verdicts:
        if v.verdict == MISSING_RUN:
            lines.append(
                f"FAIL  {v.cell_id}: cell missing from the run "
                "(baseline cell silently dropped)"
            )
        elif v.verdict == MISSING_BASELINE:
            lines.append(
                f"NEW   {v.cell_id}: no baseline yet (not gated; "
                "commit a new baseline to start tracking)"
            )
        elif v.verdict == FAIL:
            arrow = (
                "above" if v.direction == "higher_is_worse" else "below"
            )
            delta = (
                f"{v.delta_pct:+.1f}%"
                if v.delta_pct is not None
                else "n/a"
            )
            lines.append(
                f"FAIL  {v.cell_id}: {v.metric} = {v.run_value:g} vs "
                f"baseline {v.baseline_value:g} ({delta}); "
                f"{arrow} the {v.rel_tol:.0%} band"
            )
    lines.append(
        "verdict: "
        + ("PASS" if comparison.ok else f"FAIL ({len(comparison.failures)})")
    )
    return "\n".join(lines)
