"""Benchmark-matrix runner.

Executes every cell of a :class:`~repro.bench.matrix.MatrixSpec` and
produces a schema-validated run artifact.  Per cell:

* build the mechanism over the cell's leaf grid (timed separately as
  the offline cost, mirroring the paper's offline/online split);
* push ``n_points`` workload requests through the *actual sampling
  path* and record throughput;
* compute the exact Oya-style metric panel (adversarial error,
  conditional entropy, worst-case loss, tight epsilon) from the
  mechanism's end-to-end matrix under the cell's empirical prior;
* estimate the empirical epsilon by sampling — the same estimator the
  statistical test suite uses, so harness and tests cannot diverge.

Randomness is rooted in one documented seed: every cell derives its
stream from ``(root_seed, crc32(cell_id))``, so editing the matrix
(adding or reordering cells) never shifts any other cell's draws.
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Callable, Sequence

import numpy as np

from repro.bench.artifact import envelope, validate_artifact
from repro.bench.matrix import CellSpec, DatasetSpec, MatrixSpec
from repro.core.budget.allocation import allocate_budget_fixed_height
from repro.core.msm import MultiStepMechanism
from repro.exceptions import EvaluationError
from repro.eval.privacy import (
    empirical_epsilon_sampled,
    privacy_metrics,
)
from repro.geo.bbox import BoundingBox
from repro.geo.metric import EUCLIDEAN
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.mechanisms.base import Mechanism
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.matrix import MechanismMatrix
from repro.mechanisms.planar_laplace import (
    PlanarLaplaceMechanism,
    planar_laplace_matrix,
)
from repro.mechanisms.remap import remap_mechanism
from repro.priors.base import GridPrior
from repro.priors.empirical import empirical_prior

#: The repository's root seed (the paper's submission date, shared with
#: ``benchmarks/common.py``).  Every stream below derives from it.
ROOT_SEED = 20190326

#: Side of the synthetic uniform domain, matching the datasets' ~20 km
#: city windows.
UNIFORM_SIDE_KM = 20.0

#: Synthetic road network used by ``graph-city`` cells: one fixed city
#: shared by every cell (the cell streams only drive workloads and
#: sampling), so graph cells stay comparable across epsilons and runs.
GRAPH_CITY_BLOCKS = 8
GRAPH_CITY_BLOCK_KM = 0.5
GRAPH_CITY_SEED = ROOT_SEED


def cell_seed(root_seed: int, cell_id: str) -> np.random.SeedSequence:
    """Per-cell seed derivation, stable under matrix edits."""
    return np.random.SeedSequence(
        [root_seed, zlib.crc32(cell_id.encode("utf-8"))]
    )


def _load_points_and_bounds(
    dataset: DatasetSpec,
) -> tuple[list[Point] | None, BoundingBox]:
    if dataset.name == "uniform":
        square = BoundingBox.square(Point(0.0, 0.0), UNIFORM_SIDE_KM)
        return None, square
    if dataset.name == "gowalla":
        from repro.datasets import load_gowalla_austin

        ds = load_gowalla_austin(checkin_fraction=dataset.fraction)
    else:
        from repro.datasets import load_yelp_las_vegas

        ds = load_yelp_las_vegas(checkin_fraction=dataset.fraction)
    return ds.points(), ds.bounds


def _workload(
    points: list[Point] | None,
    bounds: BoundingBox,
    n: int,
    rng: np.random.Generator,
) -> list[Point]:
    if points is None:
        xs = rng.uniform(bounds.min_x, bounds.max_x, size=n)
        ys = rng.uniform(bounds.min_y, bounds.max_y, size=n)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]
    picks = rng.integers(len(points), size=n)
    return [points[int(i)] for i in picks]


def _eval_inputs(grid: RegularGrid, n: int) -> list[Point]:
    """``n`` leaf centres nearest the domain centre.

    A *contiguous* central block, not an evenly-spread sample: adjacent
    cells share most of their output support, which is what gives the
    empirical-epsilon estimator well-sampled cell pairs to bind on.
    """
    cx = (grid.bounds.min_x + grid.bounds.max_x) / 2.0
    cy = (grid.bounds.min_y + grid.bounds.max_y) / 2.0
    centers = grid.centers()
    ranked = sorted(
        range(len(centers)),
        key=lambda i: (
            (centers[i].x - cx) ** 2 + (centers[i].y - cy) ** 2,
            i,
        ),
    )
    return [centers[i] for i in ranked[: min(n, len(centers))]]


def _build_mechanism(
    cell: CellSpec,
    leaf_grid: RegularGrid,
    prior: GridPrior,
    bounds: BoundingBox,
    rho: float,
) -> tuple[Mechanism, Callable[[], MechanismMatrix], tuple[float, ...]]:
    """The cell's sampler, a thunk for its exact matrix, its budgets."""
    g, h = cell.index.granularity, cell.index.height
    if cell.mechanism in ("msm", "msm-remap", "msm-kernel"):
        plan = allocate_budget_fixed_height(
            cell.epsilon, g, bounds.side, height=h, rho=rho
        )
        index = HierarchicalGrid(bounds, g, h)
        msm = MultiStepMechanism(
            index, plan.budgets, prior, remap=cell.mechanism == "msm-remap"
        )
        msm.precompute()
        if cell.mechanism == "msm-kernel":
            # Serve through the compiled array walk; the column fails
            # loudly if the warmed tree ever stops compiling.
            msm.engine.kernel = "always"
            if msm.engine.compile(build=False) is None:
                raise EvaluationError(
                    "msm-kernel cell: warmed GIHI tree failed to compile"
                )

        def matrix() -> MechanismMatrix:
            walk = msm.to_matrix()
            if cell.mechanism == "msm-remap":
                # Fold the finalise-stage remap in, mirroring the
                # engine's OptimalRemapPostProcessor (to_matrix alone
                # is the raw walk).
                return remap_mechanism(
                    walk, prior.probabilities, EUCLIDEAN
                )
            return walk

        return msm, matrix, tuple(plan.budgets)
    if cell.mechanism == "pl":
        pl = PlanarLaplaceMechanism(cell.epsilon, grid=leaf_grid)
        return (
            pl,
            lambda: planar_laplace_matrix(leaf_grid, cell.epsilon),
            (cell.epsilon,),
        )
    exp = ExponentialMechanism(cell.epsilon, leaf_grid)
    return exp, lambda: exp.matrix, (cell.epsilon,)


def _graph_eval_inputs(partition: "GraphPartitionIndex", n: int) -> list[Point]:
    """``n`` leaf-medoid vertices nearest the domain centre.

    The graph analogue of :func:`_eval_inputs` — and like it, the
    inputs are the *matrix's own input set* (leaf representatives, not
    arbitrary vertices): the estimator divides log frequency ratios by
    ``dx``, so evaluating at adjacent road vertices a fraction of a
    block apart would amplify sampling noise by the tiny divisor
    instead of measuring the mechanism.
    """
    b = partition.bounds
    cx = (b.min_x + b.max_x) / 2.0
    cy = (b.min_y + b.max_y) / 2.0
    centers = [leaf.center for leaf in partition.leaves()]
    ranked = sorted(
        range(len(centers)),
        key=lambda i: (
            (centers[i].x - cx) ** 2 + (centers[i].y - cy) ** 2,
            i,
        ),
    )
    return [centers[i] for i in ranked[: min(n, len(centers))]]


def _run_graph_cell(
    cell: CellSpec, spec: MatrixSpec, rng: np.random.Generator
) -> dict[str, Any]:
    """Execute one road-network cell: the staged MSM over the balanced
    edge-cut partition, with every distance — loss panel, tight
    epsilon, empirical epsilon — measured under shortest-path distance.

    The per-level budgets are an equal split of the cell epsilon (the
    lattice-aware allocator reasons about grid cell diagonals and does
    not transfer to network distance).
    """
    from repro.graph import (
        GraphMetric,
        GraphPartitionIndex,
        VertexBins,
        synthetic_city,
    )

    g, h = cell.index.granularity, cell.index.height
    build_start = time.perf_counter()
    city = synthetic_city(
        blocks=GRAPH_CITY_BLOCKS,
        block_km=GRAPH_CITY_BLOCK_KM,
        seed=GRAPH_CITY_SEED,
    )
    metric = GraphMetric(city)
    partition = GraphPartitionIndex(city, fanout=g, height=h)
    budgets = (cell.epsilon / h,) * h
    prior = GridPrior.uniform(
        RegularGrid(city.bounds, cell.index.leaf_granularity)
    )
    msm = MultiStepMechanism(partition, budgets, prior, dq=metric, dx=metric)
    msm.precompute()
    build_seconds = time.perf_counter() - build_start

    workload = _workload(None, city.bounds, spec.n_points, rng)
    sample_seconds = float("inf")
    for _ in range(spec.n_timing_repeats):
        sample_start = time.perf_counter()
        reported = msm.sample_many(workload, rng)
        sample_seconds = min(
            sample_seconds, time.perf_counter() - sample_start
        )
        assert len(reported) == spec.n_points

    matrix = msm.to_matrix()
    stop_prior = np.full(matrix.shape[0], 1.0 / matrix.shape[0])
    panel = privacy_metrics(matrix, stop_prior, metric)
    eps_hat = empirical_epsilon_sampled(
        msm,
        _graph_eval_inputs(partition, spec.n_eval_inputs),
        VertexBins(city),
        spec.n_eval_samples,
        rng,
        dx=metric,
    )

    return {
        "cell_id": cell.cell_id,
        "mechanism": cell.mechanism,
        "index": cell.index.label,
        "dataset": cell.dataset.label,
        "epsilon": cell.epsilon,
        "budgets": [round(b, 6) for b in budgets],
        "n_leaves": len(partition.leaves()),
        "build_seconds": round(build_seconds, 4),
        "sample_seconds": round(sample_seconds, 4),
        "metrics": {
            "throughput_pts_per_s": round(
                spec.n_points / max(sample_seconds, 1e-9), 1
            ),
            "mean_loss_km": round(panel.expected_loss, 6),
            "worst_case_loss_km": round(panel.worst_case_loss, 6),
            "adversarial_error_km": round(panel.adversarial_error, 6),
            "identification_rate": round(panel.identification_rate, 6),
            "conditional_entropy_bits": round(
                panel.conditional_entropy_bits, 6
            ),
            "prior_entropy_bits": round(panel.prior_entropy_bits, 6),
            "empirical_epsilon": round(eps_hat, 6),
            "epsilon_tight": round(panel.epsilon_tight, 6),
        },
    }


def run_cell(
    cell: CellSpec, spec: MatrixSpec, root_seed: int = ROOT_SEED
) -> dict[str, Any]:
    """Execute one benchmark cell and return its artifact entry."""
    rng = np.random.default_rng(cell_seed(root_seed, cell.cell_id))
    if cell.dataset.name == "graph-city":
        return _run_graph_cell(cell, spec, rng)
    points, bounds = _load_points_and_bounds(cell.dataset)
    leaf_grid = RegularGrid(bounds, cell.index.leaf_granularity)
    if points is None:
        prior = GridPrior.uniform(leaf_grid)
    else:
        prior = empirical_prior(leaf_grid, points, smoothing=0.1)

    build_start = time.perf_counter()
    mechanism, matrix_thunk, budgets = _build_mechanism(
        cell, leaf_grid, prior, bounds, spec.rho
    )
    build_seconds = time.perf_counter() - build_start

    workload = _workload(points, bounds, spec.n_points, rng)
    sample_seconds = float("inf")
    for _ in range(spec.n_timing_repeats):
        sample_start = time.perf_counter()
        reported = mechanism.sample_many(workload, rng)
        sample_seconds = min(
            sample_seconds, time.perf_counter() - sample_start
        )
        assert len(reported) == spec.n_points

    matrix = matrix_thunk()
    panel = privacy_metrics(matrix, prior.probabilities, EUCLIDEAN)
    eps_hat = empirical_epsilon_sampled(
        mechanism,
        _eval_inputs(leaf_grid, spec.n_eval_inputs),
        leaf_grid,
        spec.n_eval_samples,
        rng,
    )

    return {
        "cell_id": cell.cell_id,
        "mechanism": cell.mechanism,
        "index": cell.index.label,
        "dataset": cell.dataset.label,
        "epsilon": cell.epsilon,
        "budgets": [round(b, 6) for b in budgets],
        "n_leaves": leaf_grid.n_cells,
        "build_seconds": round(build_seconds, 4),
        "sample_seconds": round(sample_seconds, 4),
        "metrics": {
            "throughput_pts_per_s": round(
                spec.n_points / max(sample_seconds, 1e-9), 1
            ),
            "mean_loss_km": round(panel.expected_loss, 6),
            "worst_case_loss_km": round(panel.worst_case_loss, 6),
            "adversarial_error_km": round(panel.adversarial_error, 6),
            "identification_rate": round(panel.identification_rate, 6),
            "conditional_entropy_bits": round(
                panel.conditional_entropy_bits, 6
            ),
            "prior_entropy_bits": round(panel.prior_entropy_bits, 6),
            "empirical_epsilon": round(eps_hat, 6),
            "epsilon_tight": round(panel.epsilon_tight, 6),
        },
    }


def run_matrix(
    spec: MatrixSpec,
    root_seed: int = ROOT_SEED,
    progress: Callable[[str], None] | None = None,
    cells: Sequence[CellSpec] | None = None,
) -> dict[str, Any]:
    """Run a whole matrix and return the validated artifact."""
    artifact = envelope("matrix", root_seed)
    artifact["matrix"] = spec.name
    artifact["config"] = {
        "n_points": spec.n_points,
        "n_eval_inputs": spec.n_eval_inputs,
        "n_eval_samples": spec.n_eval_samples,
        "rho": spec.rho,
    }
    results = []
    todo = list(spec.cells()) if cells is None else list(cells)
    for i, cell in enumerate(todo, start=1):
        if progress is not None:
            progress(f"[{i}/{len(todo)}] {cell.cell_id}")
        results.append(run_cell(cell, spec, root_seed))
    artifact["cells"] = results
    return validate_artifact(artifact)
