"""Prior aggregation and restriction.

The paper stores one global prior "on the finest effective granularity
grid used in the experiments and aggregate[s] this information to obtain
priors on coarser grids" (Section 6.1).  MSM additionally needs the prior
*restricted* to the extent of an index node and renormalised, which is
the same operation with a target grid that covers only part of the
source.
"""

from __future__ import annotations

import numpy as np

from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior


def aggregate_mass(prior: GridPrior, target: RegularGrid) -> np.ndarray:
    """Sum the prior mass falling inside each cell of ``target``.

    Mass is attributed by source-cell centre, which is exact whenever
    target cell edges align with source cell edges (always the case for
    the hierarchy's nested grids).  Source cells whose centres lie
    outside the target bounds contribute nothing, so the result may sum
    to less than one; it is *not* renormalised here.
    """
    src = prior.grid
    centers = src.centers_array()
    probs = prior.probabilities
    b = target.bounds
    inside = (
        (centers[:, 0] >= b.min_x)
        & (centers[:, 0] <= b.max_x)
        & (centers[:, 1] >= b.min_y)
        & (centers[:, 1] <= b.max_y)
    )
    mass = np.zeros(target.n_cells)
    if not np.any(inside):
        return mass
    pts = centers[inside]
    weights = probs[inside]
    g = target.granularity
    cols = np.minimum(
        ((pts[:, 0] - b.min_x) / target.cell_width).astype(np.int64), g - 1
    )
    rows = np.minimum(
        ((pts[:, 1] - b.min_y) / target.cell_height).astype(np.int64), g - 1
    )
    np.add.at(mass, rows * g + cols, weights)
    return mass


def aggregate_prior(prior: GridPrior, target: RegularGrid,
                    name: str | None = None) -> GridPrior:
    """Aggregate ``prior`` onto a coarser (or equal) grid covering it.

    Raises
    ------
    repro.exceptions.PriorError
        If no mass falls inside ``target`` (caller should fall back to a
        uniform subprior — see :func:`restrict_prior`).
    """
    mass = aggregate_mass(prior, target)
    label = name if name is not None else f"{prior.name}@g{target.granularity}"
    return GridPrior(target, mass, name=label)


def restrict_prior(prior: GridPrior, target: RegularGrid) -> GridPrior:
    """Restrict ``prior`` to a subgrid, renormalising; uniform on zero mass.

    This is the ``Π(X_i)`` of Algorithm 1: the global prior confined to
    the g x g cells of the current index node.  A node with no observed
    mass gets a uniform subprior — OPT stays GeoInd under *any* prior, so
    this choice affects utility only.
    """
    mass = aggregate_mass(prior, target)
    if mass.sum() <= 0.0:
        return GridPrior.uniform(target)
    return GridPrior(target, mass, name=f"{prior.name}|restricted")
