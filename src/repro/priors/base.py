"""Prior distributions over grid cells.

The adversary's *prior* Π (Section 2.3) is a probability vector over the
logical locations — grid cells — describing where a user is expected to
be.  OPT consumes it in its objective; the GeoInd guarantee itself never
depends on it (a mechanism tuned for one prior stays private for all).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import PriorError
from repro.grid.regular import RegularGrid

_MASS_TOL = 1e-12


class GridPrior:
    """A probability distribution over the cells of a regular grid.

    Instances are immutable: the probability vector is copied and frozen
    at construction.
    """

    def __init__(
        self,
        grid: RegularGrid,
        probabilities: np.ndarray,
        name: str = "custom",
    ):
        probs = np.asarray(probabilities, dtype=float).ravel()
        if probs.size != grid.n_cells:
            raise PriorError(
                f"prior has {probs.size} entries for a grid of "
                f"{grid.n_cells} cells"
            )
        if np.any(probs < 0) or not np.all(np.isfinite(probs)):
            raise PriorError("prior probabilities must be finite and >= 0")
        total = probs.sum()
        if total <= _MASS_TOL:
            raise PriorError("prior has (near) zero total mass")
        self._grid = grid
        self._probs = probs / total
        self._probs.setflags(write=False)
        self._name = name

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, grid: RegularGrid) -> "GridPrior":
        """The uniform prior over ``grid`` (used for Figure 5)."""
        return cls(grid, np.full(grid.n_cells, 1.0 / grid.n_cells), name="uniform")

    @classmethod
    def from_counts(cls, grid: RegularGrid, counts: np.ndarray,
                    smoothing: float = 0.0, name: str = "empirical") -> "GridPrior":
        """Build a prior from per-cell counts with optional additive smoothing.

        ``smoothing`` is the pseudo-count added to every cell (Laplace /
        Dirichlet smoothing); with zero check-ins everywhere it falls
        back to uniform only when ``smoothing > 0``.
        """
        counts = np.asarray(counts, dtype=float).ravel()
        if counts.size != grid.n_cells:
            raise PriorError(
                f"counts have {counts.size} entries for {grid.n_cells} cells"
            )
        if smoothing < 0:
            raise PriorError(f"smoothing must be >= 0, got {smoothing}")
        return cls(grid, counts + smoothing, name=name)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def grid(self) -> RegularGrid:
        """The grid this prior is defined over."""
        return self._grid

    @property
    def probabilities(self) -> np.ndarray:
        """The (read-only) probability vector, row-major over cells."""
        return self._probs

    @property
    def name(self) -> str:
        """Human-readable label for result tables."""
        return self._name

    def __len__(self) -> int:
        return self._probs.size

    def __getitem__(self, cell_index: int) -> float:
        return float(self._probs[cell_index])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridPrior(name={self._name!r}, g={self._grid.granularity}, "
            f"entropy={self.entropy():.3f})"
        )

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------
    def sample_cell(self, rng: np.random.Generator) -> int:
        """Draw a cell index from the prior."""
        return int(rng.choice(self._probs.size, p=self._probs))

    def entropy(self) -> float:
        """Shannon entropy in bits; a skew measure used in reports."""
        positive = self._probs[self._probs > 0]
        return float(-(positive * np.log2(positive)).sum())

    def max_cell(self) -> int:
        """Index of the most likely cell (the adversary's blind guess)."""
        return int(np.argmax(self._probs))

    def total_variation_distance(self, other: "GridPrior") -> float:
        """TV distance to another prior over the same grid."""
        if other.grid.n_cells != self._grid.n_cells:
            raise PriorError("priors live on different grids")
        return float(0.5 * np.abs(self._probs - other.probabilities).sum())


def expected_distance_to_center(prior: GridPrior) -> float:
    """Mean snap loss under the prior: E over cells of E[dist to centre].

    Quantifies the irreducible discretisation error the paper discusses
    after Algorithm 1: a user uniform in a cell is on average ~0.38 cell
    sides away from its centre.
    """
    unit = (math.sqrt(2.0) + math.asinh(1.0)) / 6.0
    side = max(prior.grid.cell_width, prior.grid.cell_height)
    return unit * side
