"""Empirical priors from check-in samples.

Mirrors the paper's prior modelling (Section 6.1): superimpose a regular
grid on the city window, count check-ins per cell relative to the total,
and use the resulting histogram as the global prior Π describing the
behaviour of an average user.
"""

from __future__ import annotations

from typing import Sequence

from repro.geo.point import Point
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior


def empirical_prior(
    grid: RegularGrid,
    points: Sequence[Point],
    smoothing: float = 0.0,
    name: str = "empirical",
) -> GridPrior:
    """Histogram prior over ``grid`` from a sample of locations.

    Parameters
    ----------
    grid:
        Target grid; points outside its bounds are ignored.
    points:
        Check-in locations (planar km coordinates).
    smoothing:
        Additive pseudo-count per cell.  The paper uses raw counts;
        smoothing > 0 is useful when a coarse sample would otherwise
        leave cells at exactly zero mass.
    """
    counts = grid.histogram(list(points))
    return GridPrior.from_counts(grid, counts, smoothing=smoothing, name=name)


def empirical_prior_for_user(
    dataset,
    user_id: int,
    grid: RegularGrid,
    smoothing: float = 1.0,
) -> GridPrior:
    """Per-user prior: the histogram of one user's own check-ins.

    The paper models "the behaviour of an average user" with a single
    global prior (Section 6.1); an adversary targeting a *specific*
    user can do better with that user's history, and a client that
    knows its own history can tune OPT/MSM against exactly that
    stronger adversary.  Smoothing defaults to 1 because individual
    histories are sparse.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.checkin.CheckInDataset`.
    user_id:
        The user whose check-ins form the prior.

    Raises
    ------
    repro.exceptions.PriorError
        If the user has no check-ins and ``smoothing`` is zero.
    """
    from repro.geo.point import Point

    mask = dataset.user_ids == user_id
    points = [Point(float(x), float(y)) for x, y in dataset.xy[mask]]
    return empirical_prior(
        grid, points, smoothing=smoothing, name=f"user-{user_id}"
    )
