"""Adversary-prior models over grid cells."""

from repro.priors.aggregate import aggregate_mass, aggregate_prior, restrict_prior
from repro.priors.base import GridPrior, expected_distance_to_center
from repro.priors.empirical import empirical_prior, empirical_prior_for_user

__all__ = [
    "GridPrior",
    "aggregate_mass",
    "aggregate_prior",
    "empirical_prior",
    "empirical_prior_for_user",
    "expected_distance_to_center",
    "restrict_prior",
]
