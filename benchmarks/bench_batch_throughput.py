"""Single-point vs batch sanitisation throughput (the PR-2 tentpole).

Measures the same workload — 10k uniformly distributed requests over a
depth-3 GIHI with a fully warmed node cache — through both walk
implementations:

* **single** — ``sample_with_report`` in a Python loop, one
  ``rng.choice`` per level per point (the paper's online path);
* **batch** — ``sanitize_batch``: group by node, bulk cache warm-up,
  vectorised CDF-inversion sampling per group.

Results go to ``BENCH_batch.json`` at the repository root (committed, so
the README throughput table has an auditable source).  Runnable both
ways:

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python -m pytest benchmarks/bench_batch_throughput.py

The acceptance bar is a >= 5x speedup; in practice the batch path lands
well above 10x because the scalar loop pays ``rng.choice`` (~40us) and a
per-point ``locate_child`` at every level.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.msm import MultiStepMechanism
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior

#: Where the committed result lands.
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: Workload size of the acceptance criterion.
N_POINTS = 10_000

#: Depth-3 GIHI at g = 3: 91 internal nodes, 729 leaf cells.
GRANULARITY = 3
HEIGHT = 3
BUDGETS = (0.4, 0.5, 0.6)

SEED = 20190326


def build_msm() -> MultiStepMechanism:
    """The benchmark instance: depth-3 GIHI, uniform prior, warm cache."""
    square = BoundingBox.square(Point(0.0, 0.0), 20.0)
    prior = GridPrior.uniform(
        RegularGrid(square, GRANULARITY**HEIGHT)
    )
    index = HierarchicalGrid(square, GRANULARITY, HEIGHT)
    msm = MultiStepMechanism(index, BUDGETS, prior)
    msm.precompute()
    return msm


def workload(n: int = N_POINTS) -> list[Point]:
    """``n`` uniform requests over the domain, fixed seed."""
    coords = np.random.default_rng(SEED).uniform(0.0, 20.0, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in coords]


def run_benchmark(n: int = N_POINTS) -> dict:
    """Time both paths on identical warm-cache workloads."""
    msm = build_msm()
    points = workload(n)

    rng = np.random.default_rng(SEED)
    start = time.perf_counter()
    single = [msm.sample_with_report(x, rng) for x in points]
    single_seconds = time.perf_counter() - start

    rng = np.random.default_rng(SEED)
    start = time.perf_counter()
    batch = msm.sanitize_batch(points, rng)
    batch_seconds = time.perf_counter() - start

    assert len(single) == len(batch) == n
    return {
        "benchmark": "batch-sanitisation-throughput",
        "n_points": n,
        "index": f"GIHI g={GRANULARITY} h={HEIGHT}",
        "budgets": list(BUDGETS),
        "seed": SEED,
        "python": platform.python_version(),
        "single_seconds": round(single_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "single_points_per_second": round(n / single_seconds, 1),
        "batch_points_per_second": round(n / batch_seconds, 1),
        "speedup": round(single_seconds / batch_seconds, 2),
    }


def test_batch_throughput_at_least_5x():
    """Acceptance: >= 5x over the single-point loop on 10k points."""
    result = run_benchmark()
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    assert result["speedup"] >= 5.0, result


def main() -> None:
    result = run_benchmark()
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
