"""Single-point vs batch sanitisation throughput (the PR-2 tentpole).

Measures the same workload — 10k uniformly distributed requests over a
depth-3 GIHI with a fully warmed node cache — through both walk
implementations:

* **single** — ``sample_with_report`` in a Python loop, one
  ``rng.choice`` per level per point (the paper's online path);
* **batch** — ``sanitize_batch``: group by node, bulk cache warm-up,
  vectorised CDF-inversion sampling per group.

Results go to ``BENCH_batch.json`` at the repository root (committed,
so the README throughput table has an auditable source), wrapped in the
versioned artifact envelope of :mod:`repro.bench.artifact`.  Runnable
both ways:

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python -m pytest benchmarks/bench_batch_throughput.py

The acceptance bar is a >= 5x speedup; in practice the batch path lands
well above 10x because the scalar loop pays ``rng.choice`` (~40us) and a
per-point ``locate_child`` at every level.
"""

from __future__ import annotations

import json
import platform
import time

from common import (
    BUDGETS,
    GRANULARITY,
    HEIGHT,
    REPO_ROOT,
    ROOT_SEED,
    build_gihi_msm,
    rng,
    uniform_workload,
    write_bench_artifact,
)

#: Where the committed result lands.
RESULT_PATH = REPO_ROOT / "BENCH_batch.json"

#: Workload size of the acceptance criterion.
N_POINTS = 10_000


def run_benchmark(n: int = N_POINTS) -> dict:
    """Time both paths on identical warm-cache workloads."""
    msm = build_gihi_msm()
    points = uniform_workload(n, "batch-workload")

    single_rng = rng("batch-single")
    start = time.perf_counter()
    single = [msm.sample_with_report(x, single_rng) for x in points]
    single_seconds = time.perf_counter() - start

    batch_rng = rng("batch-batch")
    start = time.perf_counter()
    batch = msm.sanitize_batch(points, batch_rng)
    batch_seconds = time.perf_counter() - start

    assert len(single) == len(batch) == n
    return {
        "benchmark": "batch-sanitisation-throughput",
        "n_points": n,
        "index": f"GIHI g={GRANULARITY} h={HEIGHT}",
        "budgets": list(BUDGETS),
        "seed": ROOT_SEED,
        "python": platform.python_version(),
        "single_seconds": round(single_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "single_points_per_second": round(n / single_seconds, 1),
        "batch_points_per_second": round(n / batch_seconds, 1),
        "speedup": round(single_seconds / batch_seconds, 2),
    }


def test_batch_throughput_at_least_5x():
    """Acceptance: >= 5x over the single-point loop on 10k points."""
    result = run_benchmark()
    write_bench_artifact("batch-sanitisation-throughput", result, RESULT_PATH)
    assert result["speedup"] >= 5.0, result


def main() -> None:
    result = run_benchmark()
    write_bench_artifact("batch-sanitisation-throughput", result, RESULT_PATH)
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
