"""Ablation — MSM over the paper's future-work index structures.

Runs MSM over the balanced hierarchical grid (the paper's GIHI) and the
two adaptive structures named in Section 8 (quadtree, k-d split tree)
on the same dataset and total budget.  The adaptive structures are an
extension, not a paper result, so the bench asserts only sanity: every
index yields a working mechanism with bounded loss and sub-second
queries.
"""

import pytest

from repro.eval.experiments import run_index_ablation

from conftest import emit, run_once


@pytest.mark.benchmark(group="ablation-index")
@pytest.mark.parametrize("dataset_name", ["gowalla", "yelp"])
def test_index_ablation(benchmark, gowalla, yelp, config, dataset_name):
    dataset = gowalla if dataset_name == "gowalla" else yelp
    table = run_once(benchmark, run_index_ablation, dataset, config=config)
    emit(table, f"ablation_index_{dataset_name}")

    assert len(table) == 4
    side = dataset.bounds.side
    for loss, ms in zip(table.column("loss_d_km"),
                        table.column("ms_per_query")):
        assert 0 < loss < side / 2
        assert ms < 1000.0
