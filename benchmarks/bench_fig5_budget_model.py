"""Figure 5 — accuracy of the budget model's same-cell estimate Phi.

Paper shape: for g >= 3 the predicted Phi tracks the empirical Pr[x|x]
of the solved mechanism within about +-5 %; g = 2 is the documented
outlier.  Phi models an infinite lattice, so the interior-cell diagonal
is the apples-to-apples comparison (boundary cells systematically
retain extra mass); the bench asserts tight interior agreement and the
looser mean-level agreement for mid granularities.
"""

import pytest

from repro.eval.experiments import run_fig5

from conftest import emit, run_once


@pytest.mark.benchmark(group="fig5")
def test_fig5_budget_model_accuracy(benchmark, gowalla, config):
    table = run_once(
        benchmark,
        run_fig5,
        gowalla,
        granularities=(2, 3, 4, 5, 6, 7),
        rhos=(0.5, 0.6, 0.7, 0.8, 0.9),
        config=config,
    )
    emit(table, "fig5_budget_model")

    for g, rho, interior in zip(
        table.column("g"), table.column("rho"), table.column("interior_pr_xx")
    ):
        if g >= 5:
            assert interior == pytest.approx(rho, abs=0.05), (g, rho)
    mean_err = sum(table.column("abs_error")) / len(table)
    assert mean_err < 0.15
