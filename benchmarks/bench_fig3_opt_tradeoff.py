"""Figure 3 — flat OPT's utility/runtime trade-off vs granularity.

Paper shape: utility loss falls from ~4.5 km to ~2 km as g grows from
2 to 11 while solver time explodes super-linearly (hours past g = 11;
g = 12 did not finish in 24 h).  At laptop scale we sweep g = 2..8 with
a per-solve time limit standing in for the paper's 24-hour cutoff.
"""

import pytest

from repro.eval.experiments import run_fig3

from conftest import emit, run_once


@pytest.mark.benchmark(group="fig3")
def test_fig3_opt_tradeoff(benchmark, gowalla, config):
    table = run_once(
        benchmark,
        run_fig3,
        gowalla,
        granularities=(2, 3, 4, 5, 6, 7, 8),
        config=config,
        time_limit=120.0,
    )
    emit(table, "fig3_opt_tradeoff")

    solved = [row for row in table.rows if row[4] == "optimal"]
    losses = [row[2] for row in solved]
    times = [row[3] for row in solved]
    # Paper shape: utility improves with g, time grows super-linearly.
    assert losses[0] > losses[-1]
    assert times[-1] > 10 * times[0]
