"""Figures 10 and 11 — MSM utility vs the same-cell target rho.

Paper shape: for g = 2 loss falls steadily as rho grows (smoother
budget allocation); for g = 4 and especially g = 6 the trend flattens
or reverses because a high rho starves the lower levels of budget.  The
paper stresses these trends are "not-so-well defined" for larger g, so
the bench pins only the robust claims: the g = 2 series decreases from
rho = 0.5 to 0.9 and carries the worst absolute loss, and no series
varies wildly (starvation changes utility smoothly).
"""

import pytest

from repro.eval.experiments import run_fig10_11

from conftest import emit, run_once


def _assert_paper_shape(table):
    g2 = table.filtered(g=2).column("loss_d_km")
    assert g2[-1] < g2[0]  # decreasing trend for the coarsest grid
    # g = 2's absolute utility is the worst of the granularities shown.
    for rho in set(table.column("rho")):
        sub = table.filtered(rho=rho)
        by_g = dict(zip(sub.column("g"), sub.column("loss_d_km")))
        assert by_g[2] >= min(by_g.values())


@pytest.mark.benchmark(group="fig10-11")
def test_fig10a_11a_gowalla(benchmark, gowalla, config):
    table = run_once(
        benchmark,
        run_fig10_11,
        gowalla,
        rhos=(0.5, 0.6, 0.7, 0.8, 0.9),
        granularities=(2, 4, 6),
        config=config,
    )
    emit(table, "fig10a_11a_gowalla")
    _assert_paper_shape(table)


@pytest.mark.benchmark(group="fig10-11")
def test_fig10b_11b_yelp(benchmark, yelp, config):
    table = run_once(
        benchmark,
        run_fig10_11,
        yelp,
        rhos=(0.5, 0.6, 0.7, 0.8, 0.9),
        granularities=(2, 4, 6),
        config=config,
    )
    emit(table, "fig10b_11b_yelp")
    _assert_paper_shape(table)
