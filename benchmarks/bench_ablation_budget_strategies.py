"""Ablation — how much does the Section-5 budget model buy?

Compares the model-driven split against uniform, geometric (the same
growing-towards-the-leaves shape as the model, without its calibration)
and reverse-geometric (shrinking towards the leaves — the allocation
shape Cormode et al. recommend for aggregate DP releases, which the
paper's Section 7 argues is wrong for the GeoInd setting) over the same
two-level index.  Expected: no structure-oblivious split beats the
model by a meaningful margin on this workload.
"""

import pytest

from repro.eval.experiments import run_budget_strategy_ablation

from conftest import emit, run_once


@pytest.mark.benchmark(group="ablation-budget")
@pytest.mark.parametrize("granularity", [3, 4])
def test_budget_strategy_ablation(benchmark, gowalla, config, granularity):
    table = run_once(
        benchmark,
        run_budget_strategy_ablation,
        gowalla,
        granularity=granularity,
        height=2,
        config=config,
    )
    emit(table, f"ablation_budget_g{granularity}")
    losses = dict(zip(table.column("strategy"), table.column("loss_d_km")))
    model = losses["model (Algorithm 2)"]
    # The model split is never beaten by more than 15% by any
    # structure-oblivious split on this workload.
    for name, loss in losses.items():
        assert model <= loss * 1.15, (name, loss, model)
