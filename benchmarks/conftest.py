"""Shared fixtures and reporting helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper via the
functions in :mod:`repro.eval.experiments`, prints the paper-style
table, and writes a CSV under ``benchmarks/results/``.  Wall-clock of
the full regeneration is captured by pytest-benchmark (one round — the
tables themselves are the artefact, the timing is bookkeeping).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from common import derive_seed
from repro.datasets import load_gowalla_austin, load_yelp_las_vegas
from repro.eval import ExperimentConfig
from repro.eval.results import ResultTable

#: Where bench CSVs land.
RESULTS_DIR = Path(__file__).parent / "results"

#: Shared measurement protocol for the benches: more requests than the
#: test suite, fewer than the paper's 3000 to keep wall-clock sane.
#: The seed is derived from the suite's one root seed
#: (``common.ROOT_SEED``) like every other benchmark stream.
BENCH_CONFIG = ExperimentConfig(
    n_requests=1000, seed=derive_seed("paper-tables")
)


@pytest.fixture(scope="session")
def gowalla():
    """The full-size synthetic Gowalla Austin dataset."""
    return load_gowalla_austin()


@pytest.fixture(scope="session")
def yelp():
    """The full-size synthetic Yelp Las Vegas dataset."""
    return load_yelp_las_vegas()


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return BENCH_CONFIG


def emit(table: ResultTable, slug: str) -> ResultTable:
    """Print a result table and persist it as CSV."""
    print()
    print(table.format())
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    table.to_csv(RESULTS_DIR / f"{slug}.csv")
    return table


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
