"""Cold LP build cost vs Δ-spanner dilation on a wide-fanout node.

The walk engine's cold-start cost is the per-node OPT solves, and the
widest node dominates: its LP has ``n**2`` variables and — exact —
``n * (n-1)`` GeoInd constraint blocks.  The Δ-spanner optimisation
(``--dilation``; :mod:`repro.mechanisms.spanner`) restricts those
blocks to a greedy spanner's edge set solved at ``eps / Δ``, trading a
provably-bounded utility loss for a much smaller program.

This bench sweeps ``dilation ∈ {exact, 1.1, 1.5, 2.0}`` over the OPT
build for one wide-fanout step (a ``g x g`` grid of child locations,
the root step of a GIHI with fanout ``g**2``) and records, per setting:

* best-of-``REPEATS`` wall-clock build time (program assembly + solve);
* the GeoInd constraint-row count (deterministic, strictly decreasing
  in the dilation — asserted);
* the expected loss and its delta vs the exact solve (the utility price
  of the dilation);
* the privacy guard's verdict **at the full epsilon** — every matrix
  must pass :func:`repro.privacy.guard.guard_mechanism` at ``eps``, no
  matter what dilation built it (asserted; this is the accounting the
  knob relies on).

Results go to ``BENCH_coldbuild.json`` at the repository root,
committed, wrapped in the versioned artifact envelope.  Runnable both
ways:

    PYTHONPATH=src python benchmarks/bench_coldbuild.py
    PYTHONPATH=src python -m pytest benchmarks/bench_coldbuild.py
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from common import (
    REPO_ROOT,
    ROOT_SEED,
    domain_square,
    write_bench_artifact,
)
from repro.geo.metric import EUCLIDEAN
from repro.grid.regular import RegularGrid
from repro.mechanisms.optimal import optimal_mechanism_from_locations
from repro.privacy.guard import guard_mechanism

#: Where the committed result lands.
RESULT_PATH = REPO_ROOT / "BENCH_coldbuild.json"

#: Per-level fanout of the wide node: a g x g child grid (36 children —
#: wider than any node in the default benchmark GIHI).
G = 6

#: The step budget the node is solved under.  Kept moderate relative to
#: the 20 km domain: at large ``eps * distance`` the exact LP's vertex
#: solutions zero out far-pair entries down at solver-dust magnitude,
#: which the guard's strict zero tolerance rejects as an asymmetric
#: support split.  eps=0.5 keeps every matrix cleanly guardable.
EPSILON = 0.5

#: The sweep: None = exact LP (every ordered pair constrained).  The
#: greedy spanner's edge count plateaus between 1.5 and 2.5 on this
#: grid, so the top of the sweep jumps to 3.0 to keep the
#: constraint-count reduction strict.
DILATIONS = (None, 1.1, 1.5, 3.0)

#: Build timing is the best of this many passes (shared-machine noise
#: only ever slows a pass down).
REPEATS = 3

#: Successive build times may wobble by this factor without breaking
#: the monotone-reduction assertion (timing, unlike constraint counts,
#: is not deterministic).
TIME_SLACK = 1.25


def run_benchmark(g: int = G) -> dict:
    """Sweep the dilation knob over one wide-fanout OPT build."""
    grid = RegularGrid(domain_square(), g)
    locations = grid.centers()
    n = len(locations)
    prior = np.full(n, 1.0 / n)

    sweep = []
    for dilation in DILATIONS:
        best_seconds = float("inf")
        result = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = optimal_mechanism_from_locations(
                EPSILON,
                locations,
                prior,
                EUCLIDEAN,
                spanner_dilation=dilation,
            )
            best_seconds = min(best_seconds, time.perf_counter() - start)
        # the guard runs at the FULL epsilon regardless of the dilated
        # solve — failing here means the accounting is broken
        report = guard_mechanism(result.matrix, EPSILON)
        assert report.satisfied, (dilation, report)
        sweep.append(
            {
                "dilation": dilation,
                "build_seconds": round(best_seconds, 4),
                "n_constraints": result.n_constraints,
                "expected_loss_km": round(result.expected_loss, 6),
                "epsilon_tight": round(report.epsilon_tight, 6),
                "guard_passed": True,
            }
        )

    exact = sweep[0]
    for row in sweep:
        row["speedup_vs_exact"] = round(
            exact["build_seconds"] / max(row["build_seconds"], 1e-9), 2
        )
        row["loss_delta_vs_exact_km"] = round(
            row["expected_loss_km"] - exact["expected_loss_km"], 6
        )

    # deterministic: a larger dilation keeps strictly fewer spanner
    # edges, hence strictly fewer GeoInd rows
    counts = [row["n_constraints"] for row in sweep]
    assert all(a > b for a, b in zip(counts, counts[1:])), counts
    # build time must fall as the program shrinks (within timing slack)
    times = [row["build_seconds"] for row in sweep]
    assert all(
        b <= a * TIME_SLACK for a, b in zip(times, times[1:])
    ), times
    assert times[-1] < times[0], times

    return {
        "benchmark": "cold-build-dilation-sweep",
        "n_locations": n,
        "fanout": f"{g}x{g} child grid",
        "epsilon": EPSILON,
        "repeats": REPEATS,
        "seed": ROOT_SEED,
        "python": platform.python_version(),
        "sweep": sweep,
        "note": (
            "each matrix is guard-verified at the full epsilon; "
            "loss deltas are the utility price of the spanner's "
            "eps/dilation solve"
        ),
    }


def test_dilation_sweep():
    """Acceptance: dilation strictly shrinks the LP, the guard holds at
    the full epsilon everywhere, and the cold build gets faster."""
    result = run_benchmark()
    write_bench_artifact("cold-build-dilation-sweep", result, RESULT_PATH)
    assert all(row["guard_passed"] for row in result["sweep"])
    assert result["sweep"][-1]["speedup_vs_exact"] > 1.0, result


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--g", type=int, default=G,
        help=f"child-grid side of the wide node (default {G}; the "
             "committed result file is only rewritten at the default)",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(args.g)
    if args.g == G:
        write_bench_artifact(
            "cold-build-dilation-sweep", result, RESULT_PATH
        )
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
