"""Section 6.2 timing claims — online sanitisation latency.

Paper numbers (2008-era C++/Gurobi): PL ~10 ms per query, MSM
100-200 ms average and always under a second.  Absolute numbers shift
with hardware and solver; the ordering (PL fastest, warm-cache MSM
close behind, cold-cache MSM paying per-node LP solves) must hold, and
every mechanism must stay under the paper's one-second online budget.

This bench also times the primitive operations with proper
pytest-benchmark statistics: PL sampling, warm MSM sampling, and the
per-node OPT solve MSM performs on a cache miss.
"""

import pytest

from common import rng
from repro.eval.experiments import run_latency
from repro.geo.metric import EUCLIDEAN
from repro.grid.regular import RegularGrid
from repro.mechanisms.optimal import optimal_mechanism_from_locations
from repro.mechanisms.planar_laplace import PlanarLaplaceMechanism
from repro.priors.empirical import empirical_prior
from repro.core.msm import MultiStepMechanism

from conftest import emit, run_once


@pytest.mark.benchmark(group="latency")
def test_latency_table(benchmark, gowalla, config):
    """Orderings that survive hardware changes.

    Since the vectorised batch engine landed, warm-cache MSM sampling
    costs single-digit microseconds per query — the same order as PL —
    so the paper's "PL fastest" ordering is no longer guaranteed at
    this scale.  What must still hold: PL (no LP solves, ever) beats
    cold-cache MSM, warming the cache never slows MSM down, and every
    mechanism stays under the paper's one-second online budget.
    """
    table = run_once(
        benchmark, run_latency, gowalla, granularity=4, config=config
    )
    emit(table, "latency")
    by_name = dict(
        zip(table.column("mechanism"), table.column("ms_per_query"))
    )
    assert by_name["PL"] < by_name["MSM (cold cache)"]
    assert by_name["MSM (warm cache)"] <= by_name["MSM (cold cache)"] * 1.5
    assert all(ms < 1000.0 for ms in by_name.values())


@pytest.fixture(scope="module")
def warm_msm(gowalla):
    prior = empirical_prior(
        RegularGrid(gowalla.bounds, 16), gowalla.points(), smoothing=0.1
    )
    msm = MultiStepMechanism.build(0.9, 4, prior, rho=0.8)
    msm.precompute()
    return msm


@pytest.mark.benchmark(group="latency-micro")
def test_pl_sample_micro(benchmark, gowalla):
    pl = PlanarLaplaceMechanism(0.5, grid=RegularGrid(gowalla.bounds, 16))
    sample_rng = rng("latency-pl-micro")
    x = gowalla.point(0)
    benchmark(pl.sample, x, sample_rng)


@pytest.mark.benchmark(group="latency-micro")
def test_msm_warm_sample_micro(benchmark, gowalla, warm_msm):
    sample_rng = rng("latency-msm-micro")
    x = gowalla.point(0)
    benchmark(warm_msm.sample, x, sample_rng)


@pytest.mark.benchmark(group="latency-micro")
def test_per_node_opt_solve_micro(benchmark, gowalla):
    """The LP MSM solves on a cache miss (g = 4 -> 16 locations)."""
    grid = RegularGrid(gowalla.bounds, 4)
    prior = empirical_prior(grid, gowalla.points(), smoothing=0.1)
    benchmark(
        optimal_mechanism_from_locations,
        0.5,
        grid.centers(),
        prior.probabilities,
        EUCLIDEAN,
    )
