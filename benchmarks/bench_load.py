"""Multi-worker pool load benchmark: saturation + open-loop tails.

Runs :func:`repro.bench.load.run_load_benchmark` over Zipf-skewed
synthetic traffic and records the acceptance numbers in
``BENCH_load.json`` at the repository root (versioned artifact
envelope):

* **saturation throughput** — requests/s with every request submitted
  as fast as admission allows, across N worker processes mapping one
  zero-copy mechanism arena;
* **open-loop tail latency** — p50/p95/p99 measured from *scheduled*
  arrival times (coordinated-omission corrected) at half the measured
  saturation rate;
* **in-run baseline** — the single-process dispatcher server on the
  identical workload, so the speedup column never depends on a stale
  committed number.

The ≥10× gate (vs the committed 287 req/s single-core serving
baseline) is only armed on a multi-core host — ``expected_gate`` in
the result says which regime produced the artifact, and a single-core
run documents the serial fallback honestly instead of inventing cores.

Runnable both ways::

    PYTHONPATH=src python benchmarks/bench_load.py
    PYTHONPATH=src python -m pytest benchmarks/bench_load.py

``--requests N`` shrinks the workload for smoke runs (the result file
is only written at the full default size, so smoke runs cannot clobber
the committed benchmark); ``--workers`` / ``--out`` override the pool
width and artifact path for CI smoke steps.
"""

from __future__ import annotations

import argparse
import json
import os

from common import REPO_ROOT, ROOT_SEED, write_bench_artifact
from repro.bench.load import (
    COMMITTED_SINGLE_CORE_REQ_S,
    LoadSpec,
    run_load_benchmark,
)

#: Where the committed result lands.
RESULT_PATH = REPO_ROOT / "BENCH_load.json"

#: Full-size workload (the committed artifact's shape).
N_REQUESTS = 5_000
N_WORKERS = 4


def run_benchmark(
    n_requests: int = N_REQUESTS, workers: int = N_WORKERS
) -> dict:
    spec = LoadSpec(
        workers=workers,
        total_requests=n_requests,
        seed=ROOT_SEED,
    )
    return run_load_benchmark(spec, progress=print)


def test_pool_load_smoke() -> None:
    """Tier-2 gate: a small pool run completes, reports finite tails,
    and (multi-core hosts only) clears the ≥10× saturation gate."""
    results = run_benchmark(n_requests=400, workers=2)
    saturation = results["saturation"]["req_per_s"]
    assert saturation > 0
    for quantile in ("p50_ms", "p95_ms", "p99_ms"):
        value = results["open_loop"][quantile]
        assert value > 0 and value == value  # positive and not NaN
    assert results["pool_stats"]["rejected_budget"] == 0
    if results["expected_gate"] == "multicore-10x":
        assert saturation >= 10.0 * COMMITTED_SINGLE_CORE_REQ_S, (
            f"multi-core host but saturation {saturation:.0f} req/s "
            f"< 10x committed baseline "
            f"{COMMITTED_SINGLE_CORE_REQ_S:.0f} req/s"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=N_REQUESTS)
    parser.add_argument("--workers", type=int, default=N_WORKERS)
    parser.add_argument(
        "--out",
        default=None,
        help="write the artifact here instead of the committed path "
        "(committed path is only written at the full default size)",
    )
    args = parser.parse_args()

    results = run_benchmark(n_requests=args.requests, workers=args.workers)
    print(json.dumps(results, indent=2))
    if args.out is not None:
        write_bench_artifact("pool-load", results, args.out)
        print(f"\nwritten: {args.out}")
    elif args.requests == N_REQUESTS and args.workers == N_WORKERS:
        write_bench_artifact("pool-load", results, RESULT_PATH)
        print(f"\nwritten: {RESULT_PATH}")
    else:
        print("\n(smoke run: committed result not written)")


if __name__ == "__main__":
    main()
