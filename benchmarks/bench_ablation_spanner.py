"""Ablation — spanner constraint reduction for flat OPT.

Bordenabe et al.'s spanner trick (Section 7's reference [2], implemented
in :mod:`repro.mechanisms.spanner`) trades a controlled utility penalty
for a large cut in LP constraints.  Expected: constraints drop by an
order of magnitude at dilation 2.0, solve time drops with them, utility
degrades monotonically (edges run at eps / dilation), and the mechanism
remains verifiably eps-GeoInd (asserted in the unit tests).
"""

import pytest

from repro.eval.experiments import run_spanner_ablation

from conftest import emit, run_once


@pytest.mark.benchmark(group="ablation-spanner")
def test_spanner_ablation(benchmark, gowalla, config):
    table = run_once(
        benchmark,
        run_spanner_ablation,
        gowalla,
        granularities=(3, 4, 5),
        dilations=(1.2, 1.5, 2.0),
        config=config,
    )
    emit(table, "ablation_spanner")

    for g in (3, 4, 5):
        sub = table.filtered(g=g)
        by_dilation = {
            d: (c, s, u)
            for d, c, s, u in zip(
                sub.column("dilation"),
                sub.column("n_constraints"),
                sub.column("solve_seconds"),
                sub.column("utility_loss_km"),
            )
        }
        exact_constraints = by_dilation[1.0][0]
        # The reduction factor grows with n: ~3x already at the tiny
        # 9-cell grid, an order of magnitude at 25 cells.
        assert by_dilation[2.0][0] < exact_constraints / 2
        if g >= 5:
            assert by_dilation[2.0][0] < exact_constraints / 6
        # Utility never improves with a looser (more reduced) program.
        assert by_dilation[2.0][2] >= by_dilation[1.0][2] - 0.05
    # At the largest grid, the reduced solve must be faster.
    g5 = table.filtered(g=5)
    times = dict(zip(g5.column("dilation"), g5.column("solve_seconds")))
    assert times[2.0] < times[1.0]
