"""Serial vs sharded walk-engine throughput (the PR-3 tentpole).

Runs the same >= 50k-point warm-cache workload through the unified
:class:`~repro.core.engine.WalkEngine` twice:

* **serial** — :class:`~repro.core.engine.SerialExecution`: one
  vectorised pipeline in-process;
* **sharded** — :class:`~repro.core.engine.ShardedExecution`: the batch
  partitioned by top-level index node across a process pool, one seeded
  RNG stream per shard, per-shard results and cache entries merged back.

Results go to ``BENCH_engine.json`` at the repository root (committed,
so the README table has an auditable source).  Runnable both ways:

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py

Honesty note: process sharding can only beat the serial pipeline when
more than one core is actually available.  The recorded result includes
``cpu_count`` and ``workers``; the >= 2x acceptance assertion is made
only when the machine has >= 2 cores (CI runners do), and the committed
JSON states which regime produced it.  On a single-core machine the
sharded path deliberately falls back to serial — the speedup then is
~1.0 by design, not a regression.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.engine import SerialExecution, ShardedExecution
from repro.core.msm import MultiStepMechanism
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior

#: Where the committed result lands.
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Workload size of the acceptance criterion (>= 50k points).
N_POINTS = 50_000

#: Depth-3 GIHI at g = 3: 91 internal nodes, 729 leaf cells.
GRANULARITY = 3
HEIGHT = 3
BUDGETS = (0.4, 0.5, 0.6)

SEED = 20190326


def build_msm() -> MultiStepMechanism:
    """The benchmark instance: depth-3 GIHI, uniform prior, warm cache."""
    square = BoundingBox.square(Point(0.0, 0.0), 20.0)
    prior = GridPrior.uniform(RegularGrid(square, GRANULARITY**HEIGHT))
    index = HierarchicalGrid(square, GRANULARITY, HEIGHT)
    msm = MultiStepMechanism(index, BUDGETS, prior)
    msm.precompute()
    return msm


def workload(n: int = N_POINTS) -> list[Point]:
    """``n`` uniform requests over the domain, fixed seed."""
    coords = np.random.default_rng(SEED).uniform(0.0, 20.0, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in coords]


def run_benchmark(n: int = N_POINTS) -> dict:
    """Time both execution policies on identical warm-cache workloads."""
    msm = build_msm()
    points = workload(n)
    cpu_count = os.cpu_count() or 1
    workers = min(cpu_count, GRANULARITY * GRANULARITY)

    msm.executor = SerialExecution()
    start = time.perf_counter()
    serial = msm.sanitize_batch(points, np.random.default_rng(SEED))
    serial_seconds = time.perf_counter() - start

    msm.executor = ShardedExecution(max_workers=workers, min_batch_size=0)
    start = time.perf_counter()
    sharded = msm.sanitize_batch(points, np.random.default_rng(SEED))
    sharded_seconds = time.perf_counter() - start

    assert len(serial) == len(sharded) == n
    return {
        "benchmark": "walk-engine-serial-vs-sharded",
        "n_points": n,
        "index": f"GIHI g={GRANULARITY} h={HEIGHT}",
        "budgets": list(BUDGETS),
        "seed": SEED,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "workers": workers,
        "single_core_machine": cpu_count < 2,
        "serial_seconds": round(serial_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "serial_points_per_second": round(n / serial_seconds, 1),
        "sharded_points_per_second": round(n / sharded_seconds, 1),
        "speedup": round(serial_seconds / sharded_seconds, 2),
        "note": (
            "sharded falls back to the serial pipeline on single-core "
            "machines; the >= 2x criterion applies on multi-core hosts "
            "(e.g. the CI smoke step)"
            if cpu_count < 2
            else "multi-core run; >= 2x criterion applies"
        ),
    }


def test_sharded_throughput():
    """Acceptance: >= 2x over serial on >= 50k points (multi-core hosts).

    On a single-core machine the sharded executor's serial fallback is
    the correct behaviour, so only result integrity is asserted there.
    """
    result = run_benchmark()
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    if result["cpu_count"] >= 2:
        assert result["speedup"] >= 2.0, result
    else:
        assert result["sharded_points_per_second"] > 0, result


def main() -> None:
    result = run_benchmark()
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
