"""Serial vs kernel vs sharded walk-engine throughput.

Runs the same >= 50k-point warm-cache workload through the unified
:class:`~repro.core.engine.WalkEngine` three ways:

* **serial** — :class:`~repro.core.engine.SerialExecution` on the
  staged walk: one vectorised pipeline in-process, per-level Python
  grouping, full traces;
* **kernel** — the same serial executor on the compiled array walk
  (:mod:`repro.core.kernel`): the tree flattened to CSR arrays and
  per-level CDF arenas, traces off (the hot serving configuration).
  Drawn from the same seed as the serial run, so the bench also
  *verifies* the two paths sample identical points;
* **sharded** — :class:`~repro.core.engine.ShardedExecution`: the batch
  partitioned by top-level index node across a process pool, one seeded
  RNG stream per shard, per-shard results and cache entries merged back.

Results go to ``BENCH_engine.json`` at the repository root (committed,
so the README table has an auditable source), wrapped in the versioned
artifact envelope of :mod:`repro.bench.artifact`.  Runnable both ways:

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py

The default run keeps observability *disabled* — that is the regime the
committed throughput numbers (and the < 3% overhead acceptance
criterion) refer to.  ``--metrics PATH`` re-runs with a live metrics
registry and writes a Prometheus text dump (the CI obs smoke step
parses it); ``--trace-out PATH`` additionally records span trees.
``--points N`` shrinks the workload for smoke runs (the result file is
only written at the full default size, so smoke runs cannot clobber the
committed benchmark).

Honesty note: process sharding can only beat the serial pipeline when
more than one core is actually available.  The recorded result includes
``cpu_count`` and ``workers``; the >= 2x acceptance assertion is made
only when the machine has >= 2 cores (CI runners do), and the committed
JSON states which regime produced it.  On a single-core machine the
sharded path deliberately falls back to serial — the speedup then is
~1.0 by design, not a regression.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from common import (
    BUDGETS,
    GRANULARITY,
    HEIGHT,
    REPO_ROOT,
    ROOT_SEED,
    build_gihi_msm,
    rng,
    uniform_workload,
    write_bench_artifact,
)
from repro.core.engine import SerialExecution, ShardedExecution

#: Where the committed result lands.
RESULT_PATH = REPO_ROOT / "BENCH_engine.json"

#: Workload size of the acceptance criterion (>= 50k points).
N_POINTS = 50_000

#: The engine bench's workload stream name.
WORKLOAD_STREAM = "engine-workload"


def run_benchmark(n: int = N_POINTS) -> dict:
    """Time both execution policies on identical warm-cache workloads."""
    msm = build_gihi_msm()
    points = uniform_workload(n, WORKLOAD_STREAM)
    cpu_count = os.cpu_count() or 1
    workers = min(cpu_count, GRANULARITY * GRANULARITY)

    msm.executor = SerialExecution()
    msm.engine.kernel = "never"
    start = time.perf_counter()
    serial = msm.sanitize_batch(points, rng("engine-serial"))
    serial_seconds = time.perf_counter() - start

    compiled = msm.engine.compile()
    assert compiled is not None, "warm GIHI tree must compile"
    msm.engine.kernel = "always"
    start = time.perf_counter()
    kernel = msm.sanitize_batch(points, rng("engine-serial"), trace=False)
    kernel_seconds = time.perf_counter() - start
    # same seed, same distribution, same *bytes*: the fused kernel is a
    # re-expression of the staged walk, not a different mechanism
    assert all(a.point == b.point for a, b in zip(serial, kernel))

    msm.executor = ShardedExecution(max_workers=workers, min_batch_size=0)
    msm.engine.kernel = "never"
    start = time.perf_counter()
    sharded = msm.sanitize_batch(points, rng("engine-sharded"))
    sharded_seconds = time.perf_counter() - start

    assert len(serial) == len(kernel) == len(sharded) == n
    return {
        "benchmark": "walk-engine-serial-vs-sharded",
        "n_points": n,
        "index": f"GIHI g={GRANULARITY} h={HEIGHT}",
        "budgets": list(BUDGETS),
        "seed": ROOT_SEED,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "workers": workers,
        "single_core_machine": cpu_count < 2,
        # which sharded-throughput regime the recorded numbers belong
        # to: "multicore" runs are gated on the >= 2x criterion,
        # "none" (single-core serial fallback) is exempt — `repro
        # bench compare` skips the sharded band accordingly
        "expected_gate": "none" if cpu_count < 2 else "multicore",
        "serial_seconds": round(serial_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "serial_points_per_second": round(n / serial_seconds, 1),
        "kernel_points_per_second": round(n / kernel_seconds, 1),
        "sharded_points_per_second": round(n / sharded_seconds, 1),
        "kernel_speedup": round(serial_seconds / kernel_seconds, 2),
        "speedup": round(serial_seconds / sharded_seconds, 2),
        "note": (
            "sharded falls back to the serial pipeline on single-core "
            "machines; the >= 2x criterion applies on multi-core hosts "
            "(e.g. the CI smoke step)"
            if cpu_count < 2
            else "multi-core run; >= 2x criterion applies"
        ),
    }


def test_sharded_throughput():
    """Acceptance: >= 2x over serial on >= 50k points (multi-core hosts).

    On a single-core machine the sharded executor's serial fallback is
    the correct behaviour, so only result integrity is asserted there.
    The compiled-kernel criterion (>= 5x over the staged serial walk)
    is a ratio, so it applies on every host.
    """
    result = run_benchmark()
    write_bench_artifact("walk-engine-serial-vs-sharded", result, RESULT_PATH)
    assert result["kernel_speedup"] >= 5.0, result
    if result["cpu_count"] >= 2:
        assert result["speedup"] >= 2.0, result
    else:
        assert result["sharded_points_per_second"] > 0, result


def run_instrumented(
    n: int, metrics_path: str | None, trace_path: str | None
) -> dict:
    """Serial + sharded run with a live registry; dump telemetry.

    Separate from :func:`run_benchmark` on purpose: the committed
    throughput numbers come from the *disabled* path, while this one
    exists so CI can validate that the observability layer produces a
    parseable Prometheus dump covering the engine's metric glossary.
    """
    from repro.obs import Observability
    from repro.obs.export import to_jsonl, to_prometheus

    obs = Observability.collecting(trace=trace_path is not None)
    msm = build_gihi_msm(obs=obs)
    points = uniform_workload(n, WORKLOAD_STREAM)
    cpu_count = os.cpu_count() or 1
    workers = min(cpu_count, GRANULARITY * GRANULARITY)

    msm.executor = SerialExecution()
    serial = msm.sanitize_batch_report(points, rng("engine-serial"))

    msm.executor = ShardedExecution(max_workers=workers, min_batch_size=0)
    sharded = msm.sanitize_batch_report(points, rng("engine-sharded"))

    assert len(serial) == len(sharded) == n
    if metrics_path is not None:
        text = to_prometheus(obs.snapshot())
        if metrics_path == "-":
            print(text, end="")
        else:
            Path(metrics_path).write_text(text)
    if trace_path is not None:
        Path(trace_path).write_text(to_jsonl(obs.snapshot(), obs.spans))
    return {
        "benchmark": "walk-engine-instrumented-smoke",
        "n_points": n,
        "serial_points_per_second": round(
            serial.telemetry.points_per_second, 1
        ),
        "sharded_points_per_second": round(
            sharded.telemetry.points_per_second, 1
        ),
        "metrics": metrics_path,
        "trace": trace_path,
    }


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=N_POINTS,
        help=f"workload size (default {N_POINTS}; the committed result "
             "file is only rewritten at the default size)",
    )
    parser.add_argument(
        "--metrics", nargs="?", const="-", default=None, metavar="PATH",
        help="run with observability enabled and write a Prometheus text "
             "dump to PATH (stdout if no PATH is given)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also record span trees and write spans + metrics as JSON "
             "lines to PATH (implies an instrumented run)",
    )
    args = parser.parse_args(argv)

    if args.metrics is not None or args.trace_out is not None:
        result = run_instrumented(args.points, args.metrics, args.trace_out)
        if args.metrics != "-":
            print(json.dumps(result, indent=2))
        return

    result = run_benchmark(args.points)
    if args.points == N_POINTS:
        write_bench_artifact(
            "walk-engine-serial-vs-sharded", result, RESULT_PATH
        )
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
