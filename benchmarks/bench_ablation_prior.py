"""Ablation — personalised priors (the paper's future-work direction).

Section 8 proposes "more advanced cost models to better capture prior
information".  The simplest such refinement: tune OPT to the target
user's own check-in history instead of the global average-user
histogram.  By OPT's optimality the personal mechanism can only be
better *in expectation under that user's prior*; the bench measures the
margin on the most active users of each dataset.
"""

import pytest

from repro.eval.experiments import run_prior_ablation

from conftest import emit, run_once


@pytest.mark.benchmark(group="ablation-prior")
@pytest.mark.parametrize("dataset_name", ["gowalla", "yelp"])
def test_prior_ablation(benchmark, gowalla, yelp, config, dataset_name):
    dataset = gowalla if dataset_name == "gowalla" else yelp
    table = run_once(
        benchmark, run_prior_ablation, dataset,
        granularity=4, n_users=5, config=config,
    )
    emit(table, f"ablation_prior_{dataset_name}")

    improvements = table.column("improvement_pct")
    # Optimality: personal tuning never hurts in expectation.
    assert all(i >= -1e-6 for i in improvements)
    # And it helps at least one heavy user measurably.
    assert max(improvements) > 0.1
