"""Road-network scenario benchmark: MSM over a graph partition.

End-to-end exercise of the ``repro.graph`` subsystem on the synthetic
city road network, recording the acceptance numbers of the road-network
PR in ``BENCH_graph.json`` at the repository root (wrapped in the
versioned artifact envelope of :mod:`repro.bench.artifact`):

* **guard** — every cached node mechanism of the graph MSM re-passes
  :func:`~repro.privacy.guard.guard_mechanism` at its level epsilon
  with the shortest-path :class:`~repro.graph.metric.GraphMetric` as
  ``dX`` (which also re-validates the pseudometric axioms on each
  node's inputs);
* **privacy** — the exact Oya-style panel of the end-to-end walk
  matrix under network distance (optimal Bayesian inference attack,
  tight epsilon), plus the sampled empirical epsilon binned by road
  vertex — both estimators measured under shortest-path ``dX``;
* **utility** — the LBS k-NN workload of the paper's introduction with
  every distance meaning *driving* distance: POIs live on road
  vertices, the server ranks by shortest path, and the QoS cost is
  extra travel along the network.

Runnable both ways::

    PYTHONPATH=src python benchmarks/bench_graph.py
    PYTHONPATH=src python -m pytest benchmarks/bench_graph.py

``--requests N`` shrinks the LBS workload for smoke runs (the result
file is only written at the full default size, so smoke runs cannot
clobber the committed benchmark).
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from common import REPO_ROOT, rng, write_bench_artifact
from repro.attacks.bayesian import optimal_inference_attack
from repro.core.msm import MultiStepMechanism
from repro.eval.privacy import empirical_epsilon_sampled, privacy_metrics
from repro.graph import (
    GraphMetric,
    GraphPartitionIndex,
    VertexBins,
    synthetic_city,
)
from repro.grid.regular import RegularGrid
from repro.lbs.poi import POIStore
from repro.lbs.service import LocationBasedService
from repro.priors.base import GridPrior
from repro.privacy.guard import guard_mechanism

#: Where the committed result lands.
RESULT_PATH = REPO_ROOT / "BENCH_graph.json"

#: City geometry: a 9 x 9 intersection grid (81 vertices) over a ~4 km
#: window, matching the benchmark-matrix ``graph-city`` cells.
BLOCKS = 8
BLOCK_KM = 0.5
CITY_SEED = 20190326

#: Partition geometry and privacy budget (equal split per level).
FANOUT = 4
HEIGHT = 2
EPSILON = 1.0

#: Workload sizes.
N_REQUESTS = 4_000
N_POIS = 120
KNN_K = 5
N_EVAL_INPUTS = 6
N_EVAL_SAMPLES = 3_000


def build_graph_msm() -> tuple[MultiStepMechanism, GraphPartitionIndex, GraphMetric]:
    """The benchmark instance: city + partition + shortest-path MSM."""
    city = synthetic_city(blocks=BLOCKS, block_km=BLOCK_KM, seed=CITY_SEED)
    metric = GraphMetric(city)
    partition = GraphPartitionIndex(city, fanout=FANOUT, height=HEIGHT)
    prior = GridPrior.uniform(
        RegularGrid(city.bounds, FANOUT**HEIGHT)
    )
    budgets = (EPSILON / HEIGHT,) * HEIGHT
    msm = MultiStepMechanism(partition, budgets, prior, dq=metric, dx=metric)
    msm.precompute()
    return msm, partition, metric


def guard_every_node(msm: MultiStepMechanism, metric: GraphMetric) -> int:
    """Re-validate every cached node mechanism under the graph metric.

    Raises :class:`~repro.exceptions.PrivacyViolationError` on the
    first failure; returns the number of node mechanisms checked.
    """
    entries = msm.cache.snapshot()
    for entry in entries.values():
        guard_mechanism(entry.matrix, entry.epsilon, dx=metric)
    return len(entries)


def eval_inputs(partition: GraphPartitionIndex, n: int) -> list:
    """``n`` leaf-medoid vertices nearest the domain centre (the
    matrix's own input set — see ``repro.bench.runner``)."""
    b = partition.bounds
    cx = (b.min_x + b.max_x) / 2.0
    cy = (b.min_y + b.max_y) / 2.0
    centers = [leaf.center for leaf in partition.leaves()]
    ranked = sorted(
        range(len(centers)),
        key=lambda i: ((centers[i].x - cx) ** 2 + (centers[i].y - cy) ** 2, i),
    )
    return [centers[i] for i in ranked[: min(n, len(centers))]]


def run(n_requests: int = N_REQUESTS) -> dict:
    msm, partition, metric = build_graph_msm()
    city = metric.graph

    n_guarded = guard_every_node(msm, metric)

    matrix = msm.to_matrix()
    stop_prior = np.full(matrix.shape[0], 1.0 / matrix.shape[0])
    panel = privacy_metrics(matrix, stop_prior, metric)
    attack = optimal_inference_attack(matrix, stop_prior, metric)
    eps_hat = empirical_epsilon_sampled(
        msm,
        eval_inputs(partition, N_EVAL_INPUTS),
        VertexBins(city),
        N_EVAL_SAMPLES,
        rng("graph-empirical-epsilon"),
        dx=metric,
    )

    # LBS workload: POIs on road vertices, users at road vertices, all
    # ranking and travel under shortest-path distance.
    poi_rng = rng("graph-pois")
    poi_vertices = poi_rng.choice(city.n_vertices, size=N_POIS, replace=True)
    store = POIStore.from_coordinates(city.coords[poi_vertices])
    service = LocationBasedService(store, metric=metric)
    workload_rng = rng("graph-workload")
    user_vertices = workload_rng.integers(city.n_vertices, size=n_requests)
    requests = [city.vertex_point(int(v)) for v in user_vertices]
    report = service.evaluate_mechanism(
        msm, requests, rng("graph-sanitize"), k=KNN_K
    )

    return {
        "city": {
            "n_vertices": city.n_vertices,
            "n_edges": city.n_edges,
            "blocks": BLOCKS,
            "block_km": BLOCK_KM,
        },
        "partition": {
            "fanout": FANOUT,
            "height": HEIGHT,
            "n_leaves": len(partition.leaves()),
        },
        "epsilon": EPSILON,
        "budgets": [EPSILON / HEIGHT] * HEIGHT,
        "n_node_mechanisms_guarded": n_guarded,
        "privacy": {
            "epsilon_tight": round(panel.epsilon_tight, 6),
            "empirical_epsilon": round(eps_hat, 6),
            "adversarial_error_km": round(attack.expected_error, 6),
            "prior_adversarial_error_km": round(attack.prior_error, 6),
            "identification_rate": round(attack.identification_rate, 6),
            "prior_identification_rate": round(
                attack.prior_identification_rate, 6
            ),
            "conditional_entropy_bits": round(
                panel.conditional_entropy_bits, 6
            ),
            "prior_entropy_bits": round(panel.prior_entropy_bits, 6),
        },
        "lbs": {
            "n_requests": report.n_queries,
            "k": report.k,
            "n_pois": N_POIS,
            "mean_extra_travel_km": round(report.mean_extra_distance, 6),
            "median_extra_travel_km": round(report.median_extra_distance, 6),
            "mean_recall_at_k": round(report.mean_recall_at_k, 6),
        },
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_graph_bench_smoke():
    """Seconds-scale end-to-end run: guard passes on every node, the
    privacy estimators are ordered sanely and the LBS answers carry
    signal."""
    results = run(n_requests=200)
    assert results["n_node_mechanisms_guarded"] >= 1 + FANOUT
    privacy = results["privacy"]
    assert privacy["empirical_epsilon"] <= privacy["epsilon_tight"] * 1.25
    assert 0.0 < privacy["adversarial_error_km"]
    assert privacy["adversarial_error_km"] <= privacy[
        "prior_adversarial_error_km"
    ] * 1.05
    lbs = results["lbs"]
    assert 0.0 <= lbs["mean_recall_at_k"] <= 1.0
    assert lbs["mean_extra_travel_km"] >= 0.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=N_REQUESTS)
    args = parser.parse_args()
    results = run(n_requests=args.requests)
    print(json.dumps(results, indent=2))
    if args.requests == N_REQUESTS:
        path = write_bench_artifact("graph", results, RESULT_PATH)
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    else:
        print("smoke run - result file not written")
