"""Figures 6 and 7 — utility loss vs epsilon: MSM against planar Laplace.

Paper shape, both datasets and both utility metrics: MSM beats PL at
every epsilon; the gap is largest at tight privacy (about 3x at
eps = 0.1 under d, about 5x under d^2) and narrows as eps approaches 1.
"""

import pytest

from repro.eval.experiments import run_fig6_7

from conftest import emit, run_once


def _assert_paper_shape(table):
    for g in set(table.column("g")):
        msm = table.filtered(mechanism="MSM", g=g)
        pl = table.filtered(mechanism="PL", g=g)
        gaps_d = [
            p / m
            for m, p in zip(msm.column("loss_d_km"), pl.column("loss_d_km"))
        ]
        # MSM wins everywhere, most at the tightest epsilon.
        assert all(gap > 1.0 for gap in gaps_d)
        assert gaps_d[0] == max(gaps_d)
        assert gaps_d[0] > 1.8
        # The d^2 gap at eps = 0.1 exceeds the d gap (paper: ~5x vs ~3x).
        gap_d2 = (
            pl.column("loss_d2_km2")[0] / msm.column("loss_d2_km2")[0]
        )
        assert gap_d2 > gaps_d[0]
        # Both mechanisms improve with budget.
        assert msm.column("loss_d_km")[0] > msm.column("loss_d_km")[-1]
        assert pl.column("loss_d_km")[0] > pl.column("loss_d_km")[-1]


@pytest.mark.benchmark(group="fig6-7")
def test_fig6a_7a_gowalla(benchmark, gowalla, config):
    table = run_once(
        benchmark,
        run_fig6_7,
        gowalla,
        granularities=(4, 6),
        epsilons=(0.1, 0.3, 0.5, 0.7, 0.9),
        config=config,
    )
    emit(table, "fig6a_7a_gowalla")
    _assert_paper_shape(table)


@pytest.mark.benchmark(group="fig6-7")
def test_fig6b_7b_yelp(benchmark, yelp, config):
    table = run_once(
        benchmark,
        run_fig6_7,
        yelp,
        granularities=(4, 6),
        epsilons=(0.1, 0.3, 0.5, 0.7, 0.9),
        config=config,
    )
    emit(table, "fig6b_7b_yelp")
    _assert_paper_shape(table)
