"""Serving-stack benchmark: persistent warm-start + bounded-cache serving.

Exercises the PR-5 tentpole end to end and records the two acceptance
numbers in ``BENCH_serve.json`` at the repository root (wrapped in the
versioned artifact envelope of :mod:`repro.bench.artifact`):

* **warm-start**: a first engine populates a
  :class:`~repro.core.store.MechanismStore` (every node LP solved
  once); a second engine with the identical configuration then
  warm-starts from it and serves a full workload with its ``builds``
  counter at **zero** — the store eliminated every online LP solve;
* **bounded cache**: a :class:`~repro.serve.SanitizationServer` over a
  node cache capped well below the full tree's footprint serves a
  concurrent workload while ``resident_bytes`` never exceeds the
  budget; evictions (and the lazy re-solves they later cost) are
  recorded honestly as the memory/compute trade-off they are;
* **ledger overhead**: the identical workload re-runs with the durable
  (fsync'd) budget journal attached, recording the throughput price of
  crash-safe accounting and verifying the replayed journal matches
  every session's spend exactly.

Runnable both ways::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py

``--requests N`` shrinks the workload for smoke runs (the result file
is only written at the full default size, so smoke runs cannot clobber
the committed benchmark).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import threading
import time
from pathlib import Path

from common import (
    BUDGETS,
    DOMAIN_SIDE_KM,
    GRANULARITY,
    HEIGHT,
    REPO_ROOT,
    ROOT_SEED,
    build_gihi_msm,
    rng,
    write_bench_artifact,
)
from repro.core.store import MechanismStore
from repro.geo.point import Point
from repro.serve import SanitizationServer, ServerConfig

#: Where the committed result lands.
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

#: Total concurrent requests of the serving phase.
N_REQUESTS = 2_000
N_CLIENTS = 16


def _client_points(client_id: int, n: int, stream: str) -> list[Point]:
    client_rng = rng(f"{stream}-{client_id}")
    return [
        Point(
            float(client_rng.uniform(0.0, DOMAIN_SIDE_KM)),
            float(client_rng.uniform(0.0, DOMAIN_SIDE_KM)),
        )
        for _ in range(n)
    ]


def run_benchmark(n_requests: int = N_REQUESTS) -> dict:
    per_report = float(sum(BUDGETS))
    requests_per_client = n_requests // N_CLIENTS

    with tempfile.TemporaryDirectory() as tmp:
        store = MechanismStore(Path(tmp) / "store")

        # ---- phase 1: cold — solve every node LP once, persist -------
        cold = build_gihi_msm(precompute=False)
        start = time.perf_counter()
        cold_record = store.get_or_build(cold)
        cold_seconds = time.perf_counter() - start
        assert cold_record.outcome == "built"
        n_nodes = len(cold.cache)

        # ---- phase 2: warm — a new engine adopts everything ----------
        warm = build_gihi_msm(precompute=False)
        start = time.perf_counter()
        warm_record = store.get_or_build(warm)
        warm_seconds = time.perf_counter() - start
        assert warm_record.outcome == "hit"
        warm.sanitize_batch(
            [Point(3.0, 3.0), Point(17.0, 12.0), Point(9.5, 14.0)],
            rng("serve-warm-smoke"),
        )
        warm_builds = warm.cache.builds  # the acceptance number: 0

        # ---- phase 3: bounded-cache concurrent serving ---------------
        # The serving engine has the SAME configuration (fingerprint) as
        # phases 1-2 but a cache capped at half the full tree, so
        # store adoption itself runs under the byte budget.
        from repro.core.cache import NodeMechanismCache

        full_bytes = warm.cache.resident_bytes
        cache_budget = max(1, full_bytes // 2)
        serving_msm = build_gihi_msm(
            precompute=False, cache=NodeMechanismCache(max_bytes=cache_budget)
        )
        serve_record = store.get_or_build(serving_msm)
        assert serve_record.outcome == "hit"
        serve_cache = serving_msm.cache
        assert serve_cache.resident_bytes <= cache_budget
        adoption_builds = serve_cache.builds  # adoption solves nothing
        config = ServerConfig(
            lifetime_epsilon=per_report * (requests_per_client + 1),
            per_report_epsilon=per_report,
            coalesce_window=0.002,
            max_batch=512,
        )
        server = SanitizationServer(serving_msm, config)
        server._rng = rng("serve-server")

        budget_held = []

        def client(client_id: int) -> None:
            user = f"user-{client_id}"
            for x in _client_points(
                client_id, requests_per_client, "serve-client"
            ):
                server.report(user, x, timeout=120)
                budget_held.append(
                    serve_cache.resident_bytes <= cache_budget
                )

        start = time.perf_counter()
        with server:
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        serve_seconds = time.perf_counter() - start
        stats = server.stats
        served = stats.completed

        # ---- phase 4: the same workload with the durable ledger ------
        # Same configuration, fsync'd journalling on: the delta against
        # phase 3 is the honest price of crash-safe budget accounting.
        from repro.core.ledger import BudgetLedger, replay_journal

        journal = Path(tmp) / "journal"
        ledger_msm = build_gihi_msm(
            precompute=False, cache=NodeMechanismCache(max_bytes=cache_budget)
        )
        assert store.get_or_build(ledger_msm).outcome == "hit"
        ledger_server = SanitizationServer(
            ledger_msm, config, ledger=BudgetLedger(journal)
        )
        ledger_server._rng = rng("serve-ledger-server")

        def ledger_client(client_id: int) -> None:
            user = f"user-{client_id}"
            for x in _client_points(
                client_id, requests_per_client, "serve-client"
            ):
                ledger_server.report(user, x, timeout=120)

        start = time.perf_counter()
        with ledger_server:
            threads = [
                threading.Thread(target=ledger_client, args=(i,))
                for i in range(N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        ledger_seconds = time.perf_counter() - start
        ledger_served = ledger_server.stats.completed
        ledger_server.ledger.close()
        replay = replay_journal(journal)
        ledger_spend_matches = all(
            abs(
                replay.spent_for(f"user-{i}")
                - ledger_server.session(f"user-{i}").spent
            ) < 1e-9
            for i in range(N_CLIENTS)
        ) and not replay.open_reservations

        return {
            "benchmark": "serve-warm-start-and-bounded-cache",
            "index": f"GIHI g={GRANULARITY} h={HEIGHT}",
            "budgets": list(BUDGETS),
            "n_nodes": n_nodes,
            "seed": ROOT_SEED,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
            # warm-start acceptance
            "cold_build_seconds": round(cold_seconds, 4),
            "cold_lp_solves": cold_record.adopted or n_nodes,
            "warm_start_seconds": round(warm_seconds, 4),
            "warm_adopted_nodes": warm_record.adopted,
            "warm_builds_after_serving": warm_builds,
            "warm_speedup": round(cold_seconds / warm_seconds, 1),
            # bounded-cache acceptance
            "full_tree_bytes": full_bytes,
            "cache_budget_bytes": cache_budget,
            "resident_bytes_final": serve_cache.resident_bytes,
            "budget_held_at_every_sample": all(budget_held),
            "evictions": serve_cache.evictions,
            "lazy_rebuilds_under_bound": serve_cache.builds
            - adoption_builds,
            # serving throughput
            "n_requests": served,
            "n_clients": N_CLIENTS,
            "serve_seconds": round(serve_seconds, 4),
            "requests_per_second": round(served / serve_seconds, 1),
            "batches": stats.batches,
            "coalesced_requests": stats.coalesced,
            "mean_batch_size": round(served / max(1, stats.batches), 1),
            # durable-ledger overhead
            "ledger_n_requests": ledger_served,
            "ledger_serve_seconds": round(ledger_seconds, 4),
            "ledger_requests_per_second": round(
                ledger_served / ledger_seconds, 1
            ),
            "ledger_overhead_pct": round(
                100.0 * (ledger_seconds - serve_seconds) / serve_seconds, 1
            ),
            "ledger_journal_bytes": journal.stat().st_size,
            "ledger_spend_matches_sessions": ledger_spend_matches,
            "note": (
                "warm_builds_after_serving == 0 is the store acceptance "
                "criterion: the second engine never touched the LP "
                "solver.  lazy_rebuilds_under_bound is the compute cost "
                "of the halved cache budget — evicted nodes re-solve on "
                "demand, resident memory stays bounded."
            ),
        }


def test_serve_warm_start_and_bounded_cache():
    """Acceptance: zero builds after warm-start; bounded resident set."""
    result = run_benchmark()
    write_bench_artifact(
        "serve-warm-start-and-bounded-cache", result, RESULT_PATH
    )
    assert result["warm_builds_after_serving"] == 0, result
    assert result["warm_adopted_nodes"] == result["n_nodes"], result
    assert result["budget_held_at_every_sample"], result
    assert result["resident_bytes_final"] <= result["cache_budget_bytes"]
    assert result["evictions"] > 0, result
    assert result["n_requests"] == (N_REQUESTS // N_CLIENTS) * N_CLIENTS
    assert result["coalesced_requests"] > 0, result
    assert result["ledger_spend_matches_sessions"], result
    assert result["ledger_n_requests"] == result["n_requests"], result


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=N_REQUESTS,
        help=f"serving workload size (default {N_REQUESTS}; the "
             f"committed result is only written at the default size)",
    )
    args = parser.parse_args(argv)
    result = run_benchmark(args.requests)
    print(json.dumps(result, indent=2))
    if args.requests == N_REQUESTS:
        write_bench_artifact(
            "serve-warm-start-and-bounded-cache", result, RESULT_PATH
        )
        print(f"\nwritten: {RESULT_PATH}")


if __name__ == "__main__":
    main()
