"""Figures 8 and 9 — MSM utility vs grid granularity.

Paper shape: a U-shaped dependency — loss falls as g grows from 2
(finer reporting), then rises again once cells are small enough that
the walk often leaves the true cell and budget starvation bites.  The
optimum granularity is dataset-dependent (g = 5 for Gowalla, g = 4 for
Yelp in the paper); the bench asserts the U-shape's signature — the
coarsest grid does not win — for the low and mid rho settings.  At
rho = 0.9 the allocation is so top-loaded that a fully-funded two-level
g = 2 hierarchy can edge out the single-level mid granularities on the
corridor-shaped Yelp prior; EXPERIMENTS.md records that as the one
dataset-dependent deviation, in line with the paper's own caveat that
"the ideal granularity may also vary with the dataset".
"""

import pytest

from repro.eval.experiments import run_fig8_9

from conftest import emit, run_once


def _assert_u_shape(table, rho):
    sub = table.filtered(rho=rho)
    losses = sub.column("loss_d_km")
    # g = 2 must lose to the best mid granularity.
    assert min(losses[1:]) < losses[0]


@pytest.mark.benchmark(group="fig8-9")
def test_fig8a_9a_gowalla(benchmark, gowalla, config):
    table = run_once(
        benchmark,
        run_fig8_9,
        gowalla,
        granularities=(2, 3, 4, 5, 6),
        rhos=(0.5, 0.7, 0.9),
        config=config,
    )
    emit(table, "fig8a_9a_gowalla")
    for rho in (0.5, 0.7, 0.9):
        _assert_u_shape(table, rho)


@pytest.mark.benchmark(group="fig8-9")
def test_fig8b_9b_yelp(benchmark, yelp, config):
    table = run_once(
        benchmark,
        run_fig8_9,
        yelp,
        granularities=(2, 3, 4, 5, 6),
        rhos=(0.5, 0.7, 0.9),
        config=config,
    )
    emit(table, "fig8b_9b_yelp")
    for rho in (0.5, 0.7):
        _assert_u_shape(table, rho)
