"""Table 2 — MSM vs flat OPT at equal effective granularity.

Paper shape (Gowalla, eps = 0.5):

    granularity   OPT loss  MSM loss   OPT time   MSM time
    4             2.29      2.63       0.04 s     0.008 s
    9             1.97      2.22       205.7 s    0.009 s
    16            --        2.02       72 hrs+    0.53 s

OPT is slightly better on utility where it finishes; MSM is orders of
magnitude faster, and remains the only option at granularity 16 (the
paper's 72-hour timeout becomes a 120-second limit here).
"""

import math

import pytest

from repro.eval.experiments import run_table2

from conftest import emit, run_once


@pytest.mark.benchmark(group="table2")
def test_table2_msm_vs_opt(benchmark, gowalla, config):
    table = run_once(
        benchmark,
        run_table2,
        gowalla,
        granularities=(2, 3, 4),
        config=config,
        opt_time_limit=300.0,
    )
    emit(table, "table2_msm_vs_opt")

    rows = {row[0]: row for row in table.rows}
    # Where OPT completes, it is at least as good on utility (modulo MC
    # noise) but dramatically slower at the larger granularity.
    assert rows[4][5] == "optimal"
    assert rows[4][1] <= rows[4][2] * 1.25
    # At 81 cells OPT either finishes far slower than MSM (the paper's
    # 205 s vs 9 ms) or exhausts even the generous limit on a loaded box.
    if rows[9][5] == "optimal":
        assert rows[9][1] <= rows[9][2] * 1.25
    assert rows[9][3] > 20 * rows[9][4]  # OPT time >> MSM LP time at 81 cells
    # Granularity 16 (256 cells, 16.7M GeoInd rows): flat OPT cannot
    # even be built at laptop scale, MSM answers in milliseconds.
    _, opt_loss_16, msm_loss_16, _, _, status_16 = rows[16]
    assert status_16 in ("intractable", "time-limit")
    assert math.isnan(opt_loss_16)
    assert msm_loss_16 > 0
