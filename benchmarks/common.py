"""Shared setup for the benchmark scripts.

Every ``bench_*`` script used to carry its own copy of the same GIHI
builder, uniform-workload generator and hardcoded seed; they are
deduplicated here.  Seed policy:

* :data:`ROOT_SEED` (imported from :mod:`repro.bench.runner`, the
  paper's submission date) is the **only** root of randomness in the
  benchmark suite.
* Every independent stream derives from it as
  ``SeedSequence([ROOT_SEED, crc32(stream_name)])`` — the same
  derivation the matrix harness uses per cell — so adding a new bench
  (or a new stream inside one) never perturbs any other bench's draws.

Result files at the repository root (``BENCH_*.json``) go through
:func:`write_bench_artifact`, which wraps the script's payload in the
versioned envelope of :mod:`repro.bench.artifact` (schema-validated,
with git SHA / seed / host provenance).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.bench.artifact import save_artifact, wrap_legacy
from repro.bench.runner import ROOT_SEED, cell_seed
from repro.core.msm import MultiStepMechanism
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.grid.hierarchy import HierarchicalGrid
from repro.grid.regular import RegularGrid
from repro.priors.base import GridPrior

__all__ = [
    "BUDGETS",
    "DOMAIN_SIDE_KM",
    "GRANULARITY",
    "HEIGHT",
    "REPO_ROOT",
    "ROOT_SEED",
    "build_gihi_msm",
    "derive_seed",
    "domain_square",
    "rng",
    "seed_sequence",
    "uniform_prior",
    "uniform_workload",
    "write_bench_artifact",
]

#: The repository root (where ``BENCH_*.json`` artifacts land).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Side of the synthetic benchmark domain.
DOMAIN_SIDE_KM = 20.0

#: Depth-3 GIHI at g = 3: 91 internal nodes, 729 leaf cells — the
#: shared instance of the batch/engine/serve throughput benches.
GRANULARITY = 3
HEIGHT = 3
BUDGETS = (0.4, 0.5, 0.6)


def seed_sequence(stream: str) -> np.random.SeedSequence:
    """The seed for a named stream, derived from :data:`ROOT_SEED`."""
    return cell_seed(ROOT_SEED, stream)


def derive_seed(stream: str) -> int:
    """A plain-integer seed for APIs that cannot take a SeedSequence."""
    return int(seed_sequence(stream).generate_state(1)[0])


def rng(stream: str) -> np.random.Generator:
    """A fresh generator for a named stream."""
    return np.random.default_rng(seed_sequence(stream))


def domain_square() -> BoundingBox:
    """The 20 km synthetic benchmark domain."""
    return BoundingBox.square(Point(0.0, 0.0), DOMAIN_SIDE_KM)


def uniform_prior(
    square: BoundingBox | None = None, granularity: int = GRANULARITY**HEIGHT
) -> GridPrior:
    """Uniform prior over the benchmark domain's leaf grid."""
    square = square if square is not None else domain_square()
    return GridPrior.uniform(RegularGrid(square, granularity))


def build_gihi_msm(
    granularity: int = GRANULARITY,
    height: int = HEIGHT,
    budgets: tuple[float, ...] = BUDGETS,
    *,
    obs: Any = None,
    cache: Any = None,
    precompute: bool = True,
) -> MultiStepMechanism:
    """The shared benchmark instance: GIHI + uniform prior.

    ``precompute=False`` leaves the node cache cold for benches that
    time the build themselves (e.g. via the mechanism store).
    """
    square = domain_square()
    index = HierarchicalGrid(square, granularity, height)
    msm = MultiStepMechanism(
        index,
        budgets,
        uniform_prior(square, granularity**height),
        obs=obs,
        cache=cache,
    )
    if precompute:
        msm.precompute()
    return msm


def uniform_workload(n: int, stream: str = "workload") -> list[Point]:
    """``n`` uniform requests over the domain, from a named stream."""
    square = domain_square()
    coords = rng(stream).uniform(
        (square.min_x, square.min_y), (square.max_x, square.max_y), size=(n, 2)
    )
    return [Point(float(x), float(y)) for x, y in coords]


def write_bench_artifact(
    slug: str, results: dict[str, Any], path: Path, seed: int = ROOT_SEED
) -> Path:
    """Wrap a script payload in the versioned envelope and persist it."""
    return save_artifact(wrap_legacy(slug, results, seed), path)
